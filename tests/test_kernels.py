"""Correctness tests: every GTS kernel against the reference algorithms.

Each kernel runs through the full engine (streaming, strategies, caching)
and must produce exactly the same values as the straightforward NumPy
implementation on the CSR graph.
"""

import numpy as np
import pytest

from repro.baselines import reference
from repro.core import (
    BCKernel,
    BFSKernel,
    DegreeKernel,
    GTSEngine,
    PageRankKernel,
    RWRKernel,
    SSSPKernel,
    WCCKernel,
)
from repro.errors import ConfigurationError
from repro.format import PageFormatConfig, build_database
from repro.graphgen import generate_rmat
from repro.graphgen.random_graphs import generate_ring, generate_star
from repro.units import KB


def _run(db, machine, kernel, **kwargs):
    return GTSEngine(db, machine, **kwargs).run(kernel)


class TestBFS:
    def test_matches_reference(self, rmat_graph, rmat_db, machine):
        start = int(np.argmax(rmat_graph.out_degrees()))
        result = _run(rmat_db, machine, BFSKernel(start))
        expected = reference.bfs_levels(rmat_graph, start)
        assert np.array_equal(result.values["level"], expected)

    def test_unreachable_vertices_stay_unvisited(self, machine,
                                                 small_config):
        graph = generate_star(100)  # leaves have no out-edges
        db = build_database(graph, small_config)
        result = _run(db, machine, BFSKernel(start_vertex=5))
        levels = result.values["level"]
        assert levels[5] == 0
        assert (levels == -1).sum() == 99

    def test_ring_depth(self, machine, small_config):
        graph = generate_ring(50)
        db = build_database(graph, small_config)
        result = _run(db, machine, BFSKernel(0))
        assert result.values["level"].max() == 49
        assert result.num_rounds == 50

    def test_traversal_through_large_pages(self, machine, small_config):
        """A hub whose list spans several LPs must still expand fully."""
        graph = generate_star(4000)
        db = build_database(graph, small_config)
        assert db.num_large_pages >= 2
        result = _run(db, machine, BFSKernel(0))
        assert (result.values["level"] == 1).sum() == 3999

    def test_start_vertex_validated(self, rmat_db, machine):
        with pytest.raises(ConfigurationError):
            _run(rmat_db, machine, BFSKernel(start_vertex=10 ** 9))
        with pytest.raises(ConfigurationError):
            BFSKernel(start_vertex=-1)

    def test_rounds_match_reference_depth(self, rmat_graph, rmat_db,
                                          machine):
        start = int(np.argmax(rmat_graph.out_degrees()))
        result = _run(rmat_db, machine, BFSKernel(start))
        depth = reference.bfs_levels(rmat_graph, start).max()
        # One round per level that had a frontier.
        assert result.num_rounds == depth + 1


class TestPageRank:
    def test_matches_reference(self, rmat_graph, rmat_db, machine):
        result = _run(rmat_db, machine, PageRankKernel(iterations=10))
        expected = reference.pagerank(rmat_graph, iterations=10)
        assert np.allclose(result.values["rank"], expected, atol=1e-12)

    def test_custom_damping(self, rmat_graph, rmat_db, machine):
        result = _run(rmat_db, machine,
                      PageRankKernel(iterations=5, damping=0.5))
        expected = reference.pagerank(rmat_graph, iterations=5, damping=0.5)
        assert np.allclose(result.values["rank"], expected, atol=1e-12)

    def test_one_round_per_iteration(self, rmat_db, machine):
        result = _run(rmat_db, machine, PageRankKernel(iterations=7))
        assert result.num_rounds == 7

    def test_rank_mass_bounded(self, rmat_db, machine):
        result = _run(rmat_db, machine, PageRankKernel(iterations=10))
        total = result.values["rank"].sum()
        assert 0 < total <= 1.0 + 1e-9  # dangling mass leaks, never grows

    def test_large_page_vertex_divides_by_total_degree(self, machine,
                                                       small_config):
        graph = generate_star(4000)
        db = build_database(graph, small_config)
        result = _run(db, machine, PageRankKernel(iterations=3))
        expected = reference.pagerank(graph, iterations=3)
        assert np.allclose(result.values["rank"], expected, atol=1e-12)

    def test_validates_parameters(self):
        with pytest.raises(ConfigurationError):
            PageRankKernel(iterations=0)
        with pytest.raises(ConfigurationError):
            PageRankKernel(damping=1.5)


class TestSSSP:
    def test_matches_reference_weighted(self, weighted_graph, weighted_db,
                                        machine):
        start = int(np.argmax(weighted_graph.out_degrees()))
        result = _run(weighted_db, machine, SSSPKernel(start))
        expected = reference.sssp_distances(weighted_graph, start)
        assert np.allclose(result.values["distance"], expected,
                           rtol=1e-5, equal_nan=True)

    def test_unweighted_equals_bfs_depth(self, rmat_graph, rmat_db,
                                         machine):
        start = int(np.argmax(rmat_graph.out_degrees()))
        result = _run(rmat_db, machine, SSSPKernel(start))
        levels = reference.bfs_levels(rmat_graph, start)
        dist = result.values["distance"]
        reachable = levels >= 0
        assert np.allclose(dist[reachable], levels[reachable])
        assert np.all(np.isinf(dist[~reachable]))

    def test_max_rounds_caps_execution(self, weighted_db, machine):
        result = _run(weighted_db, machine,
                      SSSPKernel(start_vertex=0, max_rounds=2))
        assert result.num_rounds <= 2

    def test_start_validated(self, weighted_db, machine):
        with pytest.raises(ConfigurationError):
            _run(weighted_db, machine, SSSPKernel(start_vertex=10 ** 9))


class TestWCC:
    def test_matches_reference(self, rmat_graph, machine, small_config):
        sym = rmat_graph.symmetrised()
        db = build_database(sym, small_config)
        result = _run(db, machine, WCCKernel())
        expected = reference.weakly_connected_components(rmat_graph)
        assert np.array_equal(result.values["component"], expected)

    def test_disconnected_components(self, machine, small_config):
        # Two separate rings: labels must not mix.
        from repro.graphgen import Graph
        ring = generate_ring(10)
        sources, targets = ring.edge_list()
        graph = Graph.from_edges(
            20,
            np.concatenate([sources, sources + 10]),
            np.concatenate([targets, targets + 10]))
        db = build_database(graph.symmetrised(), small_config)
        result = _run(db, machine, WCCKernel())
        labels = result.values["component"]
        assert np.all(labels[:10] == 0)
        assert np.all(labels[10:] == 10)

    def test_max_rounds_validated(self):
        with pytest.raises(ConfigurationError):
            WCCKernel(max_rounds=0)


class TestBC:
    def test_matches_reference_single_source(self, rmat_graph, rmat_db,
                                             machine):
        start = int(np.argmax(rmat_graph.out_degrees()))
        result = _run(rmat_db, machine, BCKernel(sources=(start,)))
        expected = reference.betweenness_centrality(rmat_graph, (start,))
        assert np.allclose(result.values["centrality"], expected,
                           rtol=1e-9, atol=1e-9)

    def test_matches_reference_multi_source(self, rmat_graph, rmat_db,
                                            machine):
        degrees = rmat_graph.out_degrees()
        sources = tuple(int(v) for v in np.argsort(degrees)[-3:])
        result = _run(rmat_db, machine, BCKernel(sources=sources))
        expected = reference.betweenness_centrality(rmat_graph, sources)
        assert np.allclose(result.values["centrality"], expected,
                           rtol=1e-9, atol=1e-9)

    def test_diamond_path_counting(self, diamond_graph, machine,
                                   small_config):
        """0 -> {1,2} -> 3: each middle vertex carries half the paths."""
        db = build_database(diamond_graph, small_config)
        result = _run(db, machine, BCKernel(sources=(0,)))
        centrality = result.values["centrality"]
        assert centrality[1] == pytest.approx(0.5)
        assert centrality[2] == pytest.approx(0.5)
        assert centrality[0] == 0.0
        assert centrality[3] == 0.0

    def test_needs_a_source(self):
        with pytest.raises(ConfigurationError):
            BCKernel(sources=())

    def test_source_validated(self, rmat_db, machine):
        with pytest.raises(ConfigurationError):
            _run(rmat_db, machine, BCKernel(sources=(10 ** 9,)))


class TestRWR:
    def test_matches_reference(self, rmat_graph, rmat_db, machine):
        query = int(np.argmax(rmat_graph.out_degrees()))
        result = _run(rmat_db, machine,
                      RWRKernel(query_vertex=query, iterations=8))
        expected = reference.random_walk_with_restart(
            rmat_graph, query, iterations=8)
        assert np.allclose(result.values["proximity"], expected, atol=1e-12)

    def test_restart_mass_at_query(self, rmat_db, machine):
        result = _run(rmat_db, machine,
                      RWRKernel(query_vertex=3, iterations=5, restart=0.3))
        assert result.values["proximity"][3] >= 0.3

    def test_validates_parameters(self):
        with pytest.raises(ConfigurationError):
            RWRKernel(iterations=0)
        with pytest.raises(ConfigurationError):
            RWRKernel(restart=2.0)


class TestDegree:
    def test_matches_graph_degrees(self, rmat_graph, rmat_db, machine):
        result = _run(rmat_db, machine, DegreeKernel())
        out_expected, in_expected = reference.degree_counts(rmat_graph)
        assert np.array_equal(result.values["out_degree"], out_expected)
        assert np.array_equal(result.values["in_degree"], in_expected)

    def test_single_pass(self, rmat_db, machine):
        result = _run(rmat_db, machine, DegreeKernel())
        assert result.num_rounds == 1

    def test_star_degrees(self, machine, small_config):
        graph = generate_star(1000)
        db = build_database(graph, small_config)
        result = _run(db, machine, DegreeKernel())
        assert result.values["out_degree"][0] == 999
        assert result.values["in_degree"][0] == 0
        assert result.values["in_degree"][1:].sum() == 999
