"""Engine hardening: degenerate graphs and unusual configurations."""

import numpy as np
import pytest

from repro.baselines import reference
from repro.core import (
    BFSKernel,
    DegreeKernel,
    GTSEngine,
    PageRankKernel,
    SSSPKernel,
    WCCKernel,
)
from repro.format import PageFormatConfig, build_database
from repro.graphgen import Graph, generate_rmat
from repro.graphgen.random_graphs import generate_star
from repro.hardware.specs import scaled_workstation
from repro.units import KB


def _db(graph, page_size=1 * KB, weight_bytes=0):
    return build_database(
        graph, PageFormatConfig(2, 2, page_size, weight_bytes=weight_bytes))


class TestDegenerateGraphs:
    def test_edgeless_graph(self, machine):
        graph = Graph.from_edges(16, [], [])
        db = _db(graph)
        result = GTSEngine(db, machine).run(BFSKernel(3))
        levels = result.values["level"]
        assert levels[3] == 0
        assert (levels == -1).sum() == 15

    def test_edgeless_pagerank(self, machine):
        graph = Graph.from_edges(8, [], [])
        result = GTSEngine(_db(graph), machine).run(
            PageRankKernel(iterations=3))
        assert np.allclose(result.values["rank"], 0.15 / 8)

    def test_two_vertices(self, machine):
        graph = Graph.from_edges(2, [0], [1])
        result = GTSEngine(_db(graph), machine).run(BFSKernel(0))
        assert list(result.values["level"]) == [0, 1]

    def test_self_loops_everywhere(self, machine):
        vids = np.arange(10)
        graph = Graph.from_edges(10, vids, vids)
        result = GTSEngine(_db(graph), machine).run(BFSKernel(0))
        assert result.values["level"][0] == 0
        assert (result.values["level"][1:] == -1).all()

    def test_all_large_pages(self, machine):
        """A graph whose only adjacency lists are large-page vertices."""
        # Two hubs pointing at everything, nothing else has out-edges.
        num_vertices = 2000
        sources = np.concatenate([
            np.zeros(num_vertices - 2, dtype=np.int64),
            np.ones(num_vertices - 2, dtype=np.int64),
        ])
        targets = np.concatenate([
            np.arange(2, num_vertices, dtype=np.int64),
            np.arange(2, num_vertices, dtype=np.int64),
        ])
        graph = Graph.from_edges(num_vertices, sources, targets)
        db = _db(graph, page_size=1 * KB)
        assert db.num_large_pages >= 4
        result = GTSEngine(db, machine).run(
            PageRankKernel(iterations=3))
        expected = reference.pagerank(graph, iterations=3)
        assert np.allclose(result.values["rank"], expected, atol=1e-12)

    def test_bfs_start_on_large_page_vertex(self, machine):
        graph = generate_star(3000)
        db = _db(graph, page_size=1 * KB)
        assert db.rvt.is_large(db.page_for_vertex(0))
        result = GTSEngine(db, machine).run(BFSKernel(0))
        assert (result.values["level"] == 1).sum() == 2999

    def test_sssp_through_large_pages(self, machine):
        graph = generate_star(3000).with_random_weights(seed=4)
        db = build_database(
            graph, PageFormatConfig(2, 2, 1 * KB, weight_bytes=4))
        result = GTSEngine(db, machine).run(SSSPKernel(0))
        expected = reference.sssp_distances(graph, 0)
        assert np.allclose(result.values["distance"], expected, rtol=1e-5,
                           equal_nan=True)


class TestUnusualConfigurations:
    def test_single_stream_single_gpu_single_ssd(self, rmat_graph,
                                                 rmat_db):
        machine = scaled_workstation(num_gpus=1, num_ssds=1)
        result = GTSEngine(rmat_db, machine, num_streams=1).run(
            BFSKernel(0))
        assert np.array_equal(result.values["level"],
                              reference.bfs_levels(rmat_graph, 0))

    def test_many_gpus(self, rmat_graph, rmat_db):
        machine = scaled_workstation(num_gpus=8)
        result = GTSEngine(rmat_db, machine).run(
            PageRankKernel(iterations=2))
        expected = reference.pagerank(rmat_graph, iterations=2)
        assert np.allclose(result.values["rank"], expected, atol=1e-12)

    def test_zero_byte_cache(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine, cache_bytes=0).run(
            BFSKernel(0))
        assert result.cache_hits == 0

    def test_tiny_mm_buffer_still_correct(self, rmat_graph, rmat_db,
                                          machine):
        result = GTSEngine(
            rmat_db, machine,
            mm_buffer_bytes=rmat_db.config.page_size).run(
            PageRankKernel(iterations=2))
        expected = reference.pagerank(rmat_graph, iterations=2)
        assert np.allclose(result.values["rank"], expected, atol=1e-12)

    def test_pagerank_tolerance_stops_early(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(
            PageRankKernel(iterations=200, tolerance=1e-5))
        assert result.num_rounds < 200
        # Converged ranks approximate the 200-iteration fixpoint.
        full = GTSEngine(rmat_db, machine).run(
            PageRankKernel(iterations=200))
        assert np.allclose(result.values["rank"], full.values["rank"],
                           atol=1e-4)

    def test_pagerank_tolerance_validated(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            PageRankKernel(tolerance=0.0)

    def test_kernel_reuse_across_runs(self, rmat_graph, rmat_db, machine):
        """One kernel object can drive several runs (fresh state each)."""
        kernel = PageRankKernel(iterations=3)
        engine = GTSEngine(rmat_db, machine)
        first = engine.run(kernel)
        second = engine.run(kernel)
        assert np.allclose(first.values["rank"], second.values["rank"],
                           atol=0)

    def test_mixed_kernels_share_an_engine(self, rmat_db, machine):
        engine = GTSEngine(rmat_db, machine)
        bfs = engine.run(BFSKernel(0))
        degree = engine.run(DegreeKernel())
        wcc_db = _db(generate_rmat(8, edge_factor=4, seed=1).symmetrised())
        assert bfs.algorithm == "BFS"
        assert degree.algorithm == "Degree"
        assert GTSEngine(wcc_db, machine).run(WCCKernel()).algorithm == "CC"
