"""Tests for the graph generators (R-MAT, random, real-graph stand-ins)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graphgen import (
    generate_erdos_renyi,
    generate_ring,
    generate_rmat,
    generate_twitter_like,
    generate_uk2007_like,
    generate_yahooweb_like,
)
from repro.graphgen.random_graphs import generate_star
from repro.graphgen.realworld import REAL_GRAPH_STATS
from repro.graphgen.rmat import RMATParameters
from repro.baselines import reference


class TestRMAT:
    def test_vertex_and_edge_counts(self):
        graph = generate_rmat(10, edge_factor=16, seed=0)
        assert graph.num_vertices == 1024
        assert graph.num_edges == 1024 * 16

    def test_edge_factor(self):
        graph = generate_rmat(8, edge_factor=4, seed=0)
        assert graph.num_edges == 256 * 4

    def test_deterministic_under_seed(self):
        a = generate_rmat(9, seed=123)
        b = generate_rmat(9, seed=123)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.targets, b.targets)

    def test_different_seeds_differ(self):
        a = generate_rmat(9, seed=1)
        b = generate_rmat(9, seed=2)
        assert not np.array_equal(a.targets, b.targets)

    def test_scale_zero_is_single_vertex(self):
        graph = generate_rmat(0, edge_factor=3, seed=0)
        assert graph.num_vertices == 1
        assert graph.num_edges == 3  # all self-loops

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_rmat(-1)

    def test_degree_distribution_is_skewed(self):
        """R-MAT's defining property: max degree far above the mean."""
        graph = generate_rmat(12, edge_factor=16, seed=5)
        degrees = graph.out_degrees()
        assert degrees.max() > 8 * degrees.mean()

    def test_deduplicate_reduces_edges(self):
        raw = generate_rmat(9, seed=3)
        dedup = generate_rmat(9, seed=3, deduplicate=True)
        assert dedup.num_edges < raw.num_edges

    def test_permutation_changes_layout_not_structure(self):
        plain = generate_rmat(9, seed=4, permute=False)
        permuted = generate_rmat(9, seed=4, permute=True)
        assert plain.num_edges == permuted.num_edges
        # Degree multiset is permutation-invariant.
        assert sorted(plain.out_degrees()) == sorted(permuted.out_degrees())

    def test_parameters_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            RMATParameters(a=0.5, b=0.5, c=0.5, d=0.5)

    def test_parameters_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError):
            RMATParameters(a=1.2, b=-0.2, c=0.0, d=0.0)

    def test_uniform_parameters_give_flat_distribution(self):
        params = RMATParameters(a=0.25, b=0.25, c=0.25, d=0.25)
        graph = generate_rmat(11, edge_factor=16, parameters=params, seed=6)
        degrees = graph.out_degrees()
        # Uniform quadrants = Erdos-Renyi-like: no extreme hubs.
        assert degrees.max() < 6 * max(degrees.mean(), 1)


class TestRandomGraphs:
    def test_erdos_renyi_counts(self):
        graph = generate_erdos_renyi(100, avg_degree=5, seed=0)
        assert graph.num_vertices == 100
        assert graph.num_edges == 500

    def test_erdos_renyi_deterministic(self):
        a = generate_erdos_renyi(50, 4, seed=9)
        b = generate_erdos_renyi(50, 4, seed=9)
        assert np.array_equal(a.targets, b.targets)

    def test_erdos_renyi_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            generate_erdos_renyi(0, 4)

    def test_ring_has_full_diameter(self):
        graph = generate_ring(32)
        levels = reference.bfs_levels(graph, 0)
        assert levels.max() == 31

    def test_ring_hops(self):
        graph = generate_ring(10, hops=2)
        assert graph.num_edges == 20
        assert set(graph.neighbors(0)) == {1, 2}

    def test_ring_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            generate_ring(0)

    def test_star_degrees(self):
        graph = generate_star(10, center=3)
        degrees = graph.out_degrees()
        assert degrees[3] == 9
        assert degrees.sum() == 9

    def test_star_rejects_trivial(self):
        with pytest.raises(ConfigurationError):
            generate_star(1)


class TestRealWorldStandIns:
    def test_twitter_density_matches_real_graph(self):
        graph = generate_twitter_like(num_vertices=4096)
        target = (REAL_GRAPH_STATS["twitter"]["edges"]
                  / REAL_GRAPH_STATS["twitter"]["vertices"])
        assert abs(graph.density_ratio() - target) / target < 0.1

    def test_twitter_is_heavily_skewed(self):
        graph = generate_twitter_like(num_vertices=8192)
        degrees = graph.out_degrees()
        assert degrees.max() > 10 * degrees.mean()

    def test_uk2007_density(self):
        graph = generate_uk2007_like(num_vertices=8192)
        target = (REAL_GRAPH_STATS["uk2007"]["edges"]
                  / REAL_GRAPH_STATS["uk2007"]["vertices"])
        assert abs(graph.density_ratio() - target) / target < 0.1

    def test_yahooweb_is_sparse(self):
        graph = generate_yahooweb_like(num_vertices=16384)
        assert graph.density_ratio() < 6.0

    def test_yahooweb_diameter_exceeds_social_graph(self):
        """The defining trait: web stand-in BFS is much deeper."""
        yahoo = generate_yahooweb_like(num_vertices=8192)
        twitter = generate_twitter_like(num_vertices=8192)
        yahoo_depth = reference.bfs_levels(
            yahoo, int(np.argmax(yahoo.out_degrees()))).max()
        twitter_depth = reference.bfs_levels(
            twitter, int(np.argmax(twitter.out_degrees()))).max()
        assert yahoo_depth > 3 * twitter_depth

    def test_generators_deterministic(self):
        a = generate_uk2007_like(num_vertices=2048, seed=5)
        b = generate_uk2007_like(num_vertices=2048, seed=5)
        assert np.array_equal(a.targets, b.targets)

    def test_vertex_counts_round_to_nearest_pow2(self):
        # 5127 rounds down to 4096, not up to 8192.
        graph = generate_twitter_like(num_vertices=5127)
        assert graph.num_vertices == 4096
