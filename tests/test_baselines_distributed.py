"""Tests for the distributed baseline engines (Figure 6 systems)."""

import numpy as np
import pytest

from repro.baselines import reference
from repro.baselines.distributed import (
    ClusterSpec,
    GiraphEngine,
    GraphXEngine,
    NaiadEngine,
    PowerGraphEngine,
    paper_cluster,
    scaled_cluster,
)
from repro.errors import OutOfMemoryError
from repro.graphgen import generate_rmat
from repro.units import GB


@pytest.fixture(scope="module")
def graph():
    return generate_rmat(9, edge_factor=8, seed=33)


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster()


ALL_ENGINES = [GraphXEngine, GiraphEngine, PowerGraphEngine, NaiadEngine]


class TestClusterSpec:
    def test_paper_shape(self, cluster):
        assert cluster.num_machines == 30
        assert cluster.total_cores == 480
        assert cluster.total_memory == 30 * 64 * GB

    def test_scaled_divides_memory_only(self):
        scaled = scaled_cluster(1024)
        assert scaled.memory_per_machine == 64 * GB // 1024
        assert scaled.total_cores == 480
        assert scaled.network_bandwidth == ClusterSpec().network_bandwidth


class TestCorrectness:
    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_bfs_values_exact(self, engine_cls, graph, cluster):
        result = engine_cls(cluster).run_bfs(graph, 0)
        assert np.array_equal(result.values["level"],
                              reference.bfs_levels(graph, 0))

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_pagerank_values_exact(self, engine_cls, graph, cluster):
        result = engine_cls(cluster).run_pagerank(graph, iterations=4)
        assert np.allclose(result.values["rank"],
                           reference.pagerank(graph, iterations=4))

    def test_sssp_values_exact(self, graph, cluster):
        weighted = graph.with_random_weights(seed=1)
        result = PowerGraphEngine(cluster).run_sssp(weighted, 0)
        assert np.allclose(result.values["distance"],
                           reference.sssp_distances(weighted, 0),
                           rtol=1e-5, equal_nan=True)

    def test_cc_values_exact(self, graph, cluster):
        result = GiraphEngine(cluster).run_cc(graph)
        assert np.array_equal(
            result.values["component"],
            reference.weakly_connected_components(graph))

    def test_bc_values_exact(self, graph, cluster):
        result = NaiadEngine(cluster).run_bc(graph, sources=(0,))
        assert np.allclose(
            result.values["centrality"],
            reference.betweenness_centrality(graph, (0,)), atol=1e-9)


class TestTimingModel:
    def test_result_metadata(self, graph, cluster):
        result = PowerGraphEngine(cluster).run_bfs(
            graph, 0, dataset_name="toy")
        assert result.engine == "PowerGraph"
        assert result.dataset == "toy"
        assert result.elapsed_seconds > 0
        assert result.num_rounds >= 1

    def test_more_iterations_cost_more(self, graph, cluster):
        engine = GraphXEngine(cluster)
        short = engine.run_pagerank(graph, iterations=2).elapsed_seconds
        long = engine.run_pagerank(graph, iterations=8).elapsed_seconds
        assert long > 3 * short

    def test_time_scale_divides_barriers(self, graph):
        plain = GiraphEngine(paper_cluster(), time_scale=1.0)
        scaled = GiraphEngine(paper_cluster(), time_scale=1000.0)
        assert (scaled.run_bfs(graph, 0).elapsed_seconds
                < plain.run_bfs(graph, 0).elapsed_seconds)

    def test_powergraph_reduces_wire_messages(self, graph, cluster):
        """The vertex-cut never sends more than raw Pregel messages."""
        engine = PowerGraphEngine(cluster)
        raw = graph.num_edges
        assert engine.wire_messages(raw, graph) <= raw

    def test_engine_performance_ordering_pagerank(self):
        """Paper: Giraph slowest, PowerGraph fastest (PageRank).

        Run at experiment scale (scaled barriers, larger graph) so the
        ordering reflects compute + communication, not toy-graph barrier
        constants."""
        big = generate_rmat(13, edge_factor=16, seed=5)
        times = {
            cls.name: cls(scaled_cluster(8192),
                          time_scale=8192).run_pagerank(
                big, iterations=5).elapsed_seconds
            for cls in ALL_ENGINES
        }
        assert times["Giraph"] == max(times.values())
        assert times["PowerGraph"] < times["GraphX"]
        assert times["PowerGraph"] < times["Giraph"]


class TestMemoryLadder:
    def _tiny_cluster(self, total_bytes):
        return ClusterSpec(memory_per_machine=total_bytes // 30)

    def test_oom_raised_with_sizes(self, graph):
        cluster = self._tiny_cluster(30 * 1024)
        with pytest.raises(OutOfMemoryError) as exc:
            NaiadEngine(cluster).run_bfs(graph, 0)
        assert exc.value.required_bytes > exc.value.available_bytes

    def test_naiad_dies_first(self, graph):
        """Naiad's footprint exceeds every other engine's (the paper's
        'worst scalability')."""
        footprints = {}
        for cls in ALL_ENGINES:
            engine = cls(paper_cluster())
            run = __import__("repro.baselines.bsp", fromlist=["bsp"]) \
                .cached_trace(graph, "BFS", start_vertex=0)
            footprints[cls.name] = engine.memory_footprint(graph, run)
        assert footprints["Naiad"] == max(footprints.values())

    def test_memory_scales_with_graph(self, cluster):
        small = generate_rmat(7, edge_factor=8, seed=1)
        large = generate_rmat(9, edge_factor=8, seed=1)
        engine = GiraphEngine(cluster)
        from repro.baselines.bsp import cached_trace
        small_run = cached_trace(small, "PageRank", iterations=1)
        large_run = cached_trace(large, "PageRank", iterations=1)
        assert (engine.memory_footprint(large, large_run)
                > 3 * engine.memory_footprint(small, small_run))
