"""Tests for the CSR Graph container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError
from repro.graphgen import Graph


def _triangle():
    return Graph.from_edges(3, [0, 1, 2], [1, 2, 0])


class TestConstruction:
    def test_from_edges_sorts_by_source(self):
        graph = Graph.from_edges(3, [2, 0, 1], [0, 1, 2])
        assert list(graph.neighbors(0)) == [1]
        assert list(graph.neighbors(1)) == [2]
        assert list(graph.neighbors(2)) == [0]

    def test_from_edges_groups_multi_edges(self):
        graph = Graph.from_edges(2, [0, 0, 0], [1, 1, 1])
        assert graph.num_edges == 3
        assert list(graph.neighbors(0)) == [1, 1, 1]

    def test_deduplicate_removes_parallel_edges(self):
        graph = Graph.from_edges(2, [0, 0, 0], [1, 1, 1], deduplicate=True)
        assert graph.num_edges == 1

    def test_deduplicate_keeps_self_loops(self):
        graph = Graph.from_edges(2, [0, 0], [0, 0], deduplicate=True)
        assert graph.num_edges == 1
        assert list(graph.neighbors(0)) == [0]

    def test_empty_graph(self):
        graph = Graph.from_edges(4, [], [])
        assert graph.num_edges == 0
        assert graph.max_degree() == 0

    def test_rejects_out_of_range_target(self):
        with pytest.raises(FormatError):
            Graph.from_edges(2, [0], [5])

    def test_rejects_out_of_range_source(self):
        with pytest.raises(FormatError):
            Graph.from_edges(2, [7], [0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(FormatError):
            Graph.from_edges(3, [0, 1], [1])

    def test_rejects_bad_indptr(self):
        with pytest.raises(FormatError):
            Graph(2, [0, 2, 1], [0, 1])

    def test_rejects_short_indptr(self):
        with pytest.raises(FormatError):
            Graph(3, [0, 1], [0])

    def test_rejects_misaligned_weights(self):
        with pytest.raises(FormatError):
            Graph.from_edges(2, [0], [1], weights=[1.0, 2.0])


class TestDegrees:
    def test_out_degrees(self):
        graph = Graph.from_edges(3, [0, 0, 1], [1, 2, 2])
        assert list(graph.out_degrees()) == [2, 1, 0]

    def test_in_degrees(self):
        graph = Graph.from_edges(3, [0, 0, 1], [1, 2, 2])
        assert list(graph.in_degrees()) == [0, 1, 2]

    def test_degree_sums_equal_edge_count(self, rmat_graph):
        assert rmat_graph.out_degrees().sum() == rmat_graph.num_edges
        assert rmat_graph.in_degrees().sum() == rmat_graph.num_edges

    def test_max_degree(self):
        graph = Graph.from_edges(3, [0, 0, 1], [1, 2, 2])
        assert graph.max_degree() == 2

    def test_density_ratio(self):
        graph = Graph.from_edges(4, [0, 1], [1, 2])
        assert graph.density_ratio() == 0.5


class TestTransformations:
    def test_symmetrised_contains_both_directions(self):
        graph = Graph.from_edges(3, [0], [1]).symmetrised()
        assert 1 in graph.neighbors(0)
        assert 0 in graph.neighbors(1)

    def test_symmetrised_deduplicates(self):
        graph = _triangle().symmetrised()
        # Triangle symmetrised: every vertex has exactly two neighbours.
        assert list(graph.out_degrees()) == [2, 2, 2]

    def test_symmetrised_is_idempotent(self, rmat_graph):
        once = rmat_graph.symmetrised()
        twice = once.symmetrised()
        assert np.array_equal(once.indptr, twice.indptr)
        assert np.array_equal(once.targets, twice.targets)

    def test_with_random_weights_deterministic(self, rmat_graph):
        a = rmat_graph.with_random_weights(seed=3)
        b = rmat_graph.with_random_weights(seed=3)
        assert np.array_equal(a.weights, b.weights)

    def test_with_random_weights_range(self, rmat_graph):
        weighted = rmat_graph.with_random_weights(low=2.0, high=5.0, seed=1)
        assert weighted.weights.min() >= 2.0
        assert weighted.weights.max() <= 5.0

    def test_edge_list_round_trip(self):
        graph = Graph.from_edges(4, [0, 1, 3], [2, 3, 0])
        sources, targets = graph.edge_list()
        rebuilt = Graph.from_edges(4, sources, targets)
        assert np.array_equal(rebuilt.indptr, graph.indptr)
        assert np.array_equal(rebuilt.targets, graph.targets)


class TestFootprint:
    def test_csr_bytes_unweighted(self):
        graph = Graph.from_edges(3, [0, 1], [1, 2])
        assert graph.csr_bytes(index_bytes=8) == 4 * 8 + 2 * 8

    def test_csr_bytes_weighted(self):
        graph = Graph.from_edges(3, [0, 1], [1, 2])
        plain = graph.csr_bytes(index_bytes=8)
        weighted = graph.csr_bytes(index_bytes=8, weight_bytes=4)
        assert weighted == plain + 2 * 4

    def test_repr_mentions_sizes(self, rmat_graph):
        text = repr(rmat_graph)
        assert str(rmat_graph.num_vertices) in text
        assert str(rmat_graph.num_edges) in text


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_from_edges_preserves_every_edge(data):
    """Property: every (src, dst) pair appears in the built CSR."""
    num_vertices = data.draw(st.integers(2, 40))
    num_edges = data.draw(st.integers(0, 120))
    sources = data.draw(st.lists(
        st.integers(0, num_vertices - 1),
        min_size=num_edges, max_size=num_edges))
    targets = data.draw(st.lists(
        st.integers(0, num_vertices - 1),
        min_size=num_edges, max_size=num_edges))
    graph = Graph.from_edges(num_vertices, sources, targets)
    assert graph.num_edges == num_edges
    expected = sorted(zip(sources, targets))
    rebuilt = sorted(zip(*graph.edge_list()))
    assert expected == rebuilt


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_symmetrised_has_symmetric_adjacency(data):
    num_vertices = data.draw(st.integers(2, 30))
    num_edges = data.draw(st.integers(1, 60))
    sources = data.draw(st.lists(
        st.integers(0, num_vertices - 1),
        min_size=num_edges, max_size=num_edges))
    targets = data.draw(st.lists(
        st.integers(0, num_vertices - 1),
        min_size=num_edges, max_size=num_edges))
    sym = Graph.from_edges(num_vertices, sources, targets).symmetrised()
    pairs = set(zip(*sym.edge_list()))
    assert all((t, s) in pairs for s, t in pairs)
