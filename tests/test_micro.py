"""Tests for the micro-level parallelisation models (Section 6.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.micro import (
    MicroTechnique,
    WARP_SIZE,
    edge_centric_lane_steps,
    lane_steps,
    vertex_centric_lane_steps,
)
from repro.errors import ConfigurationError


class TestTechniqueParsing:
    def test_parse_strings(self):
        assert MicroTechnique.parse("edge") is MicroTechnique.EDGE_CENTRIC
        assert MicroTechnique.parse("vertex") is MicroTechnique.VERTEX_CENTRIC
        assert MicroTechnique.parse("hybrid") is MicroTechnique.HYBRID

    def test_parse_passthrough(self):
        assert MicroTechnique.parse(
            MicroTechnique.HYBRID) is MicroTechnique.HYBRID

    def test_parse_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroTechnique.parse("quantum")


class TestEdgeCentric:
    def test_one_full_warp_vertex(self):
        # Degree 32 occupies one warp for one step: 32 lane-steps + scan.
        steps = edge_centric_lane_steps(np.asarray([32]), num_records=1)
        assert steps == 32 + WARP_SIZE

    def test_partial_warp_rounds_up(self):
        # Degree 1 still burns a whole warp-step (ALU waste).
        steps = edge_centric_lane_steps(np.asarray([1]), num_records=1)
        assert steps == 32 + WARP_SIZE

    def test_scales_linearly_with_degree(self):
        small = edge_centric_lane_steps(np.asarray([64]), 1)
        large = edge_centric_lane_steps(np.asarray([640]), 1)
        assert (large - WARP_SIZE) == 10 * (small - WARP_SIZE)

    def test_inactive_records_only_pay_scan(self):
        steps = edge_centric_lane_steps(np.asarray([], dtype=np.int64),
                                        num_records=64)
        assert steps == 2 * WARP_SIZE  # two warps' scan


class TestVertexCentric:
    def test_warp_pays_its_max_degree(self):
        degrees = np.asarray([1] * 31 + [1000])
        steps = vertex_centric_lane_steps(degrees)
        assert steps == 32 * 1000

    def test_balanced_degrees_match_edge_centric(self):
        # All-equal degrees of 32: vertex and edge models coincide
        # (modulo the edge model's scan term).
        degrees = np.full(32, 32)
        vertex = vertex_centric_lane_steps(degrees)
        edge = edge_centric_lane_steps(degrees, 32)
        assert vertex == edge - WARP_SIZE

    def test_active_mask_zeroes_inactive(self):
        degrees = np.asarray([1000, 2])
        steps = vertex_centric_lane_steps(
            degrees, active_mask=np.asarray([False, True]))
        assert steps == 32 * 2

    def test_empty_page(self):
        assert vertex_centric_lane_steps(np.asarray([], dtype=int)) == 0.0

    def test_minimum_one_step_per_warp(self):
        steps = vertex_centric_lane_steps(np.zeros(5, dtype=int))
        assert steps == 32.0


class TestHybrid:
    def test_hybrid_is_min_of_both(self):
        degrees = np.asarray([1] * 31 + [1000])
        hybrid = lane_steps(MicroTechnique.HYBRID, degrees)
        edge = lane_steps(MicroTechnique.EDGE_CENTRIC, degrees)
        vertex = lane_steps(MicroTechnique.VERTEX_CENTRIC, degrees)
        assert hybrid == min(edge, vertex)

    def test_hybrid_prefers_edge_on_skewed_pages(self):
        degrees = np.asarray([1] * 31 + [1000])
        assert lane_steps("hybrid", degrees) == lane_steps("edge", degrees)

    def test_hybrid_can_prefer_vertex_on_sparse_pages(self):
        # A page of uniform degree-1 vertices: vertex-centric does 1 step
        # per warp; edge-centric pays per-record warp expansion.
        degrees = np.ones(320, dtype=int)
        assert (lane_steps("vertex", degrees)
                < lane_steps("edge", degrees))


class TestDispatch:
    def test_lane_steps_accepts_strings(self):
        degrees = np.asarray([4, 4])
        assert lane_steps("edge", degrees) > 0

    def test_active_mask_reduces_edge_work(self):
        degrees = np.asarray([100, 100])
        full = lane_steps("edge", degrees)
        half = lane_steps("edge", degrees, active_mask=[True, False])
        assert half < full


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 500), min_size=1, max_size=200))
def test_both_models_cover_every_edge(degrees):
    """Property: no model can process E edges in fewer than E lane-steps."""
    degrees = np.asarray(degrees)
    total_edges = float(degrees.sum())
    assert vertex_centric_lane_steps(degrees) >= total_edges
    assert edge_centric_lane_steps(degrees, len(degrees)) >= total_edges


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 500), min_size=1, max_size=200))
def test_hybrid_never_worse_than_either(degrees):
    degrees = np.asarray(degrees)
    hybrid = lane_steps("hybrid", degrees)
    assert hybrid <= lane_steps("edge", degrees) + 1e-9
    assert hybrid <= lane_steps("vertex", degrees) + 1e-9
