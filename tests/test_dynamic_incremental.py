"""Incremental recomputation: affected-PID seeding must reproduce the
full-rerun answer while streaming strictly fewer pages for localised
insert batches."""

import numpy as np
import pytest

from repro.core import BFSKernel, GTSEngine, WCCKernel
from repro.dynamic import (
    DynamicGraphDatabase,
    UpdateBatch,
    incremental_bfs,
    incremental_wcc,
    insert_seeds,
)
from repro.errors import UpdateError
from repro.format import build_database
from repro.graphgen import Graph


def _path_db(small_config, num_vertices=32):
    vids = np.arange(num_vertices - 1)
    graph = Graph.from_edges(num_vertices, vids, vids + 1)
    return DynamicGraphDatabase(build_database(graph, small_config))


class TestSeeds:
    def test_insert_seeds_collects_sources(self):
        batches = [UpdateBatch().insert_edge(3, 4).insert_edge(7, 1),
                   UpdateBatch().insert_edge(3, 9).add_vertices(2)]
        assert sorted(insert_seeds(batches)) == [3, 7]

    def test_deletes_are_rejected(self):
        with pytest.raises(UpdateError, match="insert-only"):
            insert_seeds([UpdateBatch().delete_edge(0, 1)])
        with pytest.raises(UpdateError):
            incremental_bfs(None, np.zeros(4, dtype=np.int32),
                            [UpdateBatch().delete_edge(0, 1)])


class TestIncrementalBFS:
    def test_matches_full_rerun(self, rmat_db, machine):
        db = DynamicGraphDatabase(rmat_db)
        engine = GTSEngine(db, machine)
        start = int(np.argmax(db.out_degrees))
        full = engine.run(BFSKernel(start_vertex=start))

        rng = np.random.default_rng(11)
        n = db.num_vertices
        batch = UpdateBatch()
        for _ in range(10):
            batch.insert_edge(int(rng.integers(n)), int(rng.integers(n)))
        db.apply(batch)

        inc = engine.run(incremental_bfs(db, full.values["level"], [batch]))
        rerun = engine.run(BFSKernel(start_vertex=start))
        np.testing.assert_array_equal(
            inc.values["level"], rerun.values["level"])

    def test_streams_fewer_pages_for_local_batch(self, rmat_db, machine):
        db = DynamicGraphDatabase(rmat_db)
        engine = GTSEngine(db, machine)
        start = int(np.argmax(db.out_degrees))
        full = engine.run(BFSKernel(start_vertex=start))

        # A batch touching a handful of vertices (far under 10% of the
        # graph) must not trigger a whole-database restream.
        batch = UpdateBatch().insert_edge(0, 1).insert_edge(2, 3)
        db.apply(batch)
        assert len(batch.touched_vertices()) < 0.1 * db.num_vertices

        inc = engine.run(incremental_bfs(db, full.values["level"], [batch]))
        rerun = engine.run(BFSKernel(start_vertex=start))
        np.testing.assert_array_equal(
            inc.values["level"], rerun.values["level"])
        assert inc.pages_streamed < rerun.pages_streamed

    def test_shortcut_edge_propagates(self, small_config, machine):
        db = _path_db(small_config)
        engine = GTSEngine(db, machine)
        full = engine.run(BFSKernel(start_vertex=0))
        assert full.values["level"][31] == 31

        db.apply(UpdateBatch().insert_edge(0, 30))
        inc = engine.run(incremental_bfs(db, full.values["level"],
                                         [UpdateBatch().insert_edge(0, 30)]))
        assert inc.values["level"][30] == 1
        assert inc.values["level"][31] == 2
        # Untouched prefix keeps its old levels.
        np.testing.assert_array_equal(
            inc.values["level"][:30], full.values["level"][:30])

    def test_edge_into_new_vertex(self, small_config, machine):
        db = _path_db(small_config, num_vertices=6)
        engine = GTSEngine(db, machine)
        full = engine.run(BFSKernel(start_vertex=0))

        batch = UpdateBatch().add_vertices(1).insert_edge(2, 6)
        db.apply(batch)
        inc = engine.run(incremental_bfs(db, full.values["level"], [batch]))
        rerun = engine.run(BFSKernel(start_vertex=0))
        np.testing.assert_array_equal(
            inc.values["level"], rerun.values["level"])
        assert inc.values["level"][6] == 3


class TestIncrementalWCC:
    def test_matches_full_rerun(self, rmat_db, machine):
        db = DynamicGraphDatabase(rmat_db)
        engine = GTSEngine(db, machine)
        full = engine.run(WCCKernel())

        rng = np.random.default_rng(5)
        n = db.num_vertices
        batch = UpdateBatch()
        for _ in range(8):
            batch.insert_edge(int(rng.integers(n)), int(rng.integers(n)))
        db.apply(batch)

        inc = engine.run(
            incremental_wcc(db, full.values["component"], [batch]))
        rerun = engine.run(WCCKernel())
        np.testing.assert_array_equal(
            inc.values["component"], rerun.values["component"])

    def test_bridge_merges_components(self, small_config, machine):
        # Two disjoint 3-cycles; a bridge edge must unify their labels.
        sources = np.array([0, 1, 2, 3, 4, 5])
        targets = np.array([1, 2, 0, 4, 5, 3])
        graph = Graph.from_edges(6, sources, targets)
        db = DynamicGraphDatabase(build_database(graph, small_config))
        engine = GTSEngine(db, machine)
        full = engine.run(WCCKernel())
        assert full.values["component"][0] != full.values["component"][3]

        batch = UpdateBatch().insert_edge(2, 3)
        db.apply(batch)
        inc = engine.run(
            incremental_wcc(db, full.values["component"], [batch]))
        rerun = engine.run(WCCKernel())
        np.testing.assert_array_equal(
            inc.values["component"], rerun.values["component"])
        assert inc.values["component"][0] == inc.values["component"][3]
