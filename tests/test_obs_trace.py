"""Tests for the structured trace recorder and its exporters."""

import json

import pytest

from repro.core import BFSKernel, GTSEngine, PageRankKernel
from repro.errors import ConfigurationError
from repro.hardware.trace import busy_fraction
from repro.obs import (
    MICROSECONDS,
    TraceRecorder,
    ascii_timeline,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def traced_pagerank(rmat_db, machine):
    engine = GTSEngine(rmat_db, machine, tracing=True)
    return engine.run(PageRankKernel(iterations=2))


@pytest.fixture(scope="module")
def traced_bfs(rmat_db, machine):
    engine = GTSEngine(rmat_db, machine, tracing=True)
    return engine.run(BFSKernel(0))


class TestRecorder:
    def test_interval_and_instant(self):
        recorder = TraceRecorder()
        recorder.interval("kernel", "gpu0", "stream[0]", 1.0, 2.0, page=7)
        recorder.instant("cache_hit", "gpu0", "page cache", 1.5, page=7)
        assert len(recorder) == 2
        assert recorder.lanes() == [("gpu0", "stream[0]"),
                                    ("gpu0", "page cache")]
        assert recorder.busy_intervals("gpu0", "stream[0]") == [(1.0, 2.0)]
        assert recorder.busy_intervals("gpu0", "page cache") == []
        assert recorder.counts() == {"kernel": 1, "cache_hit": 1}
        assert recorder.end_time() == 2.0

    def test_select(self):
        recorder = TraceRecorder()
        recorder.interval("kernel", "gpu0", "stream[0]", 0.0, 1.0)
        recorder.interval("h2d_copy", "gpu0", "copy engine", 0.0, 1.0)
        assert len(recorder.select(name="kernel")) == 1
        assert len(recorder.select(category="transfer")) == 1
        assert len(recorder.select(process="gpu0")) == 2


class TestTracedRun:
    def test_run_attaches_recorder(self, traced_pagerank):
        assert traced_pagerank.trace is not None
        assert len(traced_pagerank.trace) > 0

    def test_untraced_run_has_no_recorder(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
        assert result.trace is None

    def test_expected_event_taxonomy(self, traced_pagerank):
        counts = traced_pagerank.trace.counts()
        for name in ("kernel", "h2d_copy", "round", "round_barrier",
                     "wa_broadcast", "mm_buffer_hit", "cache_miss",
                     "cache_admit"):
            assert counts.get(name, 0) > 0, name
        assert counts["kernel"] == traced_pagerank.kernel_invocations
        assert counts["round"] == traced_pagerank.num_rounds

    def test_ssd_fetch_traced_with_cold_buffer(self, rmat_db, machine):
        engine = GTSEngine(
            rmat_db, machine, tracing=True, enable_caching=False,
            mm_buffer_bytes=rmat_db.config.page_size * 4)
        result = engine.run(BFSKernel(0))
        fetches = result.trace.select(name="ssd_fetch")
        assert fetches
        assert result.storage_bytes_read > 0
        assert all(e.process == "storage" for e in fetches)

    def test_lane_intervals_never_overlap(self, traced_pagerank,
                                          traced_bfs):
        for result in (traced_pagerank, traced_bfs):
            for process, thread in result.trace.lanes():
                intervals = sorted(
                    result.trace.busy_intervals(process, thread))
                for (_, prev_end), (start, _) in zip(intervals,
                                                     intervals[1:]):
                    assert start >= prev_end - 1e-12, (process, thread)


class TestChromeExport:
    def test_schema_valid(self, traced_pagerank):
        payload = chrome_trace(traced_pagerank.trace)
        events = validate_chrome_trace(payload)
        assert events
        assert payload["displayTimeUnit"] == "ms"

    def test_round_trip_through_file(self, traced_bfs, tmp_path):
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(traced_bfs.trace, path) == path
        payload = json.load(open(path))
        events = validate_chrome_trace(payload)
        complete = [e for e in events if e["ph"] == "X"]
        recorded = [e for e in traced_bfs.trace
                    if e.phase == "X"]
        assert len(complete) == len(recorded)

    def test_metadata_names_every_lane(self, traced_pagerank):
        payload = chrome_trace(traced_pagerank.trace)
        events = payload["traceEvents"]
        processes = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
        threads = {e["args"]["name"] for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        lanes = traced_pagerank.trace.lanes()
        assert processes == {p for p, _ in lanes}
        assert threads == {t for _, t in lanes}

    def test_requires_a_recorder(self):
        with pytest.raises(ConfigurationError):
            chrome_trace(None)

    def test_rejects_malformed_events(self):
        with pytest.raises(ConfigurationError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ConfigurationError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "k",
                                  "pid": 0, "tid": 0, "ts": 0.0}]})

    def test_json_busy_matches_recorder(self, traced_pagerank):
        """Per-lane busy time in the JSON equals the recorder's."""
        payload = chrome_trace(traced_pagerank.trace)
        events = payload["traceEvents"]
        names = {}  # (pid, tid) -> (process, thread)
        pid_names = {e["pid"]: e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
        for e in events:
            if e["ph"] == "M" and e["name"] == "thread_name":
                names[(e["pid"], e["tid"])] = (pid_names[e["pid"]],
                                               e["args"]["name"])
        json_busy = {}
        for e in events:
            if e["ph"] == "X":
                lane = names[(e["pid"], e["tid"])]
                json_busy[lane] = json_busy.get(lane, 0.0) + e["dur"]
        for lane, total in json_busy.items():
            recorded = sum(
                end - start for start, end
                in traced_pagerank.trace.busy_intervals(*lane))
            assert total / MICROSECONDS == pytest.approx(recorded)


class TestAsciiView:
    def test_renders_every_interval_lane(self, traced_pagerank):
        view = ascii_timeline(traced_pagerank.trace)
        assert "gpu0/copy engine" in view
        assert "gpu0/stream[0]" in view
        assert "engine/rounds" in view
        # Instant-only lanes carry no bars and are omitted.
        assert "page cache" not in view

    def test_busy_percentages_agree_with_recorder(self, traced_pagerank):
        """The rendered percent per lane is the recorder's busy fraction
        over the same window — the ASCII view is a projection of the
        same event stream the JSON exporter serializes."""
        recorder = traced_pagerank.trace
        t1 = recorder.end_time()
        view = ascii_timeline(recorder, width=40)
        rendered = {}
        for line in view.splitlines()[1:]:
            label, _, percent = (line.strip().split("|")[0].strip(),
                                 None, line.rsplit("|", 1)[1])
            rendered[label] = float(percent.rstrip("% "))
        for process, thread in recorder.lanes():
            intervals = recorder.busy_intervals(process, thread)
            if not intervals:
                continue
            label = "%s/%s" % (process, thread)
            expected = 100 * busy_fraction(intervals, 0.0, t1)
            assert rendered[label] == pytest.approx(expected, abs=0.51)

    def test_requires_a_recorder(self):
        with pytest.raises(ConfigurationError):
            ascii_timeline(None)
