"""Tests for the instrumented BSP traces shared by the baselines."""

import numpy as np
import pytest

from repro.baselines import bsp, reference
from repro.graphgen import generate_rmat
from repro.graphgen.random_graphs import generate_ring


@pytest.fixture(scope="module")
def graph():
    return generate_rmat(9, edge_factor=8, seed=21)


@pytest.fixture(scope="module")
def start(graph):
    return int(np.argmax(graph.out_degrees()))


class TestBFSTrace:
    def test_values_match_reference(self, graph, start):
        run = bsp.trace_bfs(graph, start)
        assert np.array_equal(run.values["level"],
                              reference.bfs_levels(graph, start))

    def test_superstep_count_is_depth(self, graph, start):
        run = bsp.trace_bfs(graph, start)
        depth = reference.bfs_levels(graph, start).max()
        assert run.num_supersteps == depth + 1

    def test_active_vertices_sum_to_reachable(self, graph, start):
        run = bsp.trace_bfs(graph, start)
        reachable = (reference.bfs_levels(graph, start) >= 0).sum()
        assert sum(s.active_vertices for s in run.supersteps) == reachable

    def test_edges_are_frontier_out_edges(self, graph, start):
        run = bsp.trace_bfs(graph, start)
        degrees = graph.out_degrees()
        levels = reference.bfs_levels(graph, start)
        for step in run.supersteps:
            expected = degrees[levels == step.index].sum()
            assert step.edges_processed == expected

    def test_ring_trace(self):
        run = bsp.trace_bfs(generate_ring(12), 0)
        assert run.num_supersteps == 12
        assert all(s.active_vertices == 1 for s in run.supersteps)


class TestPageRankTrace:
    def test_values_match_reference(self, graph):
        run = bsp.trace_pagerank(graph, iterations=6)
        assert np.allclose(run.values["rank"],
                           reference.pagerank(graph, iterations=6))

    def test_every_superstep_processes_all_edges(self, graph):
        run = bsp.trace_pagerank(graph, iterations=4)
        assert run.num_supersteps == 4
        assert all(s.edges_processed == graph.num_edges
                   for s in run.supersteps)

    def test_total_and_peak_messages(self, graph):
        run = bsp.trace_pagerank(graph, iterations=3)
        assert run.total_messages() == 3 * graph.num_edges
        assert run.peak_messages() == graph.num_edges


class TestSSSPTrace:
    def test_values_match_reference(self, graph, start):
        weighted = graph.with_random_weights(seed=5)
        run = bsp.trace_sssp(weighted, start)
        expected = reference.sssp_distances(weighted, start)
        assert np.allclose(run.values["distance"], expected, rtol=1e-5,
                           equal_nan=True)

    def test_frontier_shrinks_to_zero(self, graph, start):
        run = bsp.trace_sssp(graph.with_random_weights(seed=5), start)
        assert run.supersteps[0].active_vertices == 1
        assert run.num_supersteps >= 2


class TestWCCTrace:
    def test_values_match_reference(self, graph):
        run = bsp.trace_wcc(graph)
        assert np.array_equal(run.values["component"],
                              reference.weakly_connected_components(graph))

    def test_runs_to_fixpoint(self, graph):
        run = bsp.trace_wcc(graph)
        assert run.num_supersteps >= 2


class TestBCTrace:
    def test_values_match_reference(self, graph, start):
        run = bsp.trace_bc(graph, sources=(start,))
        expected = reference.betweenness_centrality(graph, (start,))
        assert np.allclose(run.values["centrality"], expected, atol=1e-9)

    def test_forward_and_backward_supersteps(self, graph, start):
        run = bsp.trace_bc(graph, sources=(start,))
        depth = reference.bfs_levels(graph, start).max()
        # Forward: depth+1 levels (last one empty-ish); backward: depth.
        assert run.num_supersteps >= 2 * depth


class TestTraceCache:
    def test_identical_calls_share_a_trace(self, graph):
        a = bsp.cached_trace(graph, "BFS", start_vertex=0)
        b = bsp.cached_trace(graph, "BFS", start_vertex=0)
        assert a is b

    def test_different_params_differ(self, graph):
        a = bsp.cached_trace(graph, "BFS", start_vertex=0)
        b = bsp.cached_trace(graph, "BFS", start_vertex=1)
        assert a is not b

    def test_different_graphs_differ(self, graph):
        other = generate_rmat(7, edge_factor=4, seed=2)
        a = bsp.cached_trace(graph, "PageRank", iterations=2)
        b = bsp.cached_trace(other, "PageRank", iterations=2)
        assert a is not b
