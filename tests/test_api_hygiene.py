"""API hygiene: documentation and export consistency checks."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.format", "repro.hardware", "repro.graphgen",
    "repro.core", "repro.core.kernels", "repro.baselines", "repro.bench",
]


def _all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            names.append("%s.%s" % (package_name, info.name))
    return sorted(set(names))


class TestDocumentation:
    @pytest.mark.parametrize("module_name", _all_modules())
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, "%s lacks a module docstring" % module_name
        assert len(module.__doc__.strip()) > 20

    def test_every_public_class_documented(self):
        undocumented = []
        for module_name in _all_modules():
            module = importlib.import_module(module_name)
            for name, item in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(item) \
                        and item.__module__ == module_name:
                    if not (item.__doc__ or "").strip():
                        undocumented.append("%s.%s" % (module_name, name))
        assert not undocumented, undocumented

    def test_every_public_function_documented(self):
        undocumented = []
        for module_name in _all_modules():
            module = importlib.import_module(module_name)
            for name, item in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isfunction(item) \
                        and item.__module__ == module_name:
                    if not (item.__doc__ or "").strip():
                        undocumented.append("%s.%s" % (module_name, name))
        assert not undocumented, undocumented


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        for package_name in PACKAGES[1:]:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                assert hasattr(package, name), \
                    "%s.%s" % (package_name, name)

    def test_kernels_exported_at_top_level(self):
        from repro.core import kernels
        for name in kernels.__all__:
            # Concrete algorithm kernels are part of the top-level API;
            # the abstract base and protocol helpers are not.
            if name.endswith("Kernel") and name != "Kernel":
                assert hasattr(repro, name), name
