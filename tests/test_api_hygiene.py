"""API hygiene: documentation and export consistency checks."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.format", "repro.hardware", "repro.graphgen",
    "repro.core", "repro.core.kernels", "repro.baselines", "repro.bench",
    "repro.faults", "repro.service",
]


def _all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            names.append("%s.%s" % (package_name, info.name))
    return sorted(set(names))


class TestDocumentation:
    @pytest.mark.parametrize("module_name", _all_modules())
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, "%s lacks a module docstring" % module_name
        assert len(module.__doc__.strip()) > 20

    def test_every_public_class_documented(self):
        undocumented = []
        for module_name in _all_modules():
            module = importlib.import_module(module_name)
            for name, item in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(item) \
                        and item.__module__ == module_name:
                    if not (item.__doc__ or "").strip():
                        undocumented.append("%s.%s" % (module_name, name))
        assert not undocumented, undocumented

    def test_every_public_function_documented(self):
        undocumented = []
        for module_name in _all_modules():
            module = importlib.import_module(module_name)
            for name, item in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isfunction(item) \
                        and item.__module__ == module_name:
                    if not (item.__doc__ or "").strip():
                        undocumented.append("%s.%s" % (module_name, name))
        assert not undocumented, undocumented


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        for package_name in PACKAGES[1:]:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                assert hasattr(package, name), \
                    "%s.%s" % (package_name, name)

    def test_kernels_exported_at_top_level(self):
        from repro.core import kernels
        for name in kernels.__all__:
            # Concrete algorithm kernels are part of the top-level API;
            # the abstract base and protocol helpers are not.
            if name.endswith("Kernel") and name != "Kernel":
                assert hasattr(repro, name), name


class TestErrorHierarchy:
    def _public_exceptions(self):
        from repro import errors
        return [item for name, item in vars(errors).items()
                if not name.startswith("_") and inspect.isclass(item)
                and issubclass(item, Exception)]

    def test_every_exception_derives_from_gts_error(self):
        from repro.errors import GTSError
        for cls in self._public_exceptions():
            assert issubclass(cls, GTSError), cls.__name__

    def test_fault_errors_derive_from_fault_error(self):
        from repro.errors import (DeviceLostError, FaultError,
                                  RetryExhaustedError)
        assert issubclass(RetryExhaustedError, FaultError)
        assert issubclass(DeviceLostError, FaultError)

    def test_structured_attributes_survive_construction(self):
        from repro.errors import (CapacityError, DeviceLostError,
                                  IntegrityError, RetryExhaustedError)
        capacity = CapacityError("full", required_bytes=10,
                                 available_bytes=4)
        assert (capacity.required_bytes, capacity.available_bytes) == (10, 4)
        integrity = IntegrityError("bad page", page_id=7,
                                   expected_crc=1, actual_crc=2)
        assert (integrity.page_id, integrity.expected_crc,
                integrity.actual_crc) == (7, 1, 2)
        retry = RetryExhaustedError("gave up", site="ssd_read",
                                    attempts=4, page_id=3)
        assert (retry.site, retry.attempts, retry.page_id) \
            == ("ssd_read", 4, 3)
        lost = DeviceLostError("dead", device="gpu:1", lost_at=0.5)
        assert (lost.device, lost.lost_at) == ("gpu:1", 0.5)

    def test_every_exception_raised_by_some_test(self):
        """Every public exception class appears in a pytest.raises
        somewhere in the suite — no dead error paths."""
        import pathlib
        tests_dir = pathlib.Path(__file__).parent
        corpus = "\n".join(path.read_text()
                           for path in tests_dir.glob("test_*.py"))
        missing = [cls.__name__ for cls in self._public_exceptions()
                   if cls.__name__ != "GTSError"
                   and "pytest.raises(%s" % cls.__name__ not in corpus
                   and "pytest.raises((%s" % cls.__name__ not in corpus
                   and "(%s)" % cls.__name__ not in corpus]
        assert not missing, missing
