"""Structural tests for the experiment functions (fast subsets only)."""

import pytest

from repro.bench import experiments


class TestTableStructure:
    def test_table2_rows_and_columns(self):
        table = experiments.table2_id_configurations()
        assert len(table.rows) == 3
        assert len(table.columns) == 3
        assert any("80.00 GB" in cell
                   for _, cells in table.rows for cell in cells)

    def test_table3_subset(self):
        table = experiments.table3_dataset_statistics(["rmat26"])
        assert len(table.rows) == 1
        label, cells = table.rows[0]
        assert label == "rmat26"
        assert cells[0] == "8192"          # vertices
        assert cells[1] == "131072"        # edges

    def test_table4_subset(self):
        table = experiments.table4_wa_sizes(["rmat28"])
        (_, cells), = table.rows
        assert cells[1] == "64.00 KB"      # BFS WA: 2 B x 32768 vertices
        assert cells[2] == "128.00 KB"     # PageRank WA: 4 B x 32768

    def test_table5_has_na_for_yahooweb(self):
        table = experiments.table5_totem_partitions()
        yahoo = dict(table.rows)["yahooweb"]
        assert yahoo[2] == "N/A"
        assert yahoo[3] == "N/A"
        assert dict(table.rows)["twitter"][3] == "85:15"

    def test_figure10_subset_monotone(self):
        table = experiments.figure10_streams(
            "BFS", names=["rmat26"], stream_counts=(1, 4, 16))
        (_, cells), = table.rows
        # Parse "NNN.N us"-style cells back into seconds to compare.
        def parse(cell):
            value, unit = cell.split()
            scale = {"us": 1e-6, "ms": 1e-3, "s": 1.0}[unit]
            return float(value) * scale
        times = [parse(cell) for cell in cells]
        assert times[0] > times[1] > times[2] * 0.999

    def test_figure9_row_labels(self):
        table = experiments.figure9_strategies("BFS", name="rmat27")
        labels = [label for label, _ in table.rows]
        assert labels == ["Strategy-P", "Strategy-S"]
        assert table.columns == ["in-memory", "2 SSDs", "1 SSD",
                                 "2 HDDs"]

    def test_figure14_has_three_techniques(self):
        table = experiments.figure14_micro(
            "BFS", densities=(4, 8), rmat_scale=12)
        labels = [label for label, _ in table.rows]
        assert labels == ["vertex-centric", "edge-centric", "hybrid"]

    def test_extended_algorithms_table(self):
        table = experiments.extended_algorithms(names=("rmat26",))
        labels = [label for label, _ in table.rows]
        assert "K-core (k=8)" in labels
        assert "Radius (8 sketches)" in labels

    def test_comparison_figures_embed_charts(self):
        table = experiments.figure8_gpu("BFS", datasets=["twitter"])
        assert "chart" in table.caption
        assert "#" in table.caption  # at least one bar

    def test_figure11_returns_two_tables(self):
        elapsed, hits = experiments.figure11_cache(
            names=["rmat26"],
            cache_sizes=(4096, 65536))
        assert len(elapsed.rows) == 1
        assert len(hits.rows) == 1
        assert hits.rows[0][1][-1].endswith("%")
