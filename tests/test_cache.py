"""Tests for the GPU page cache (cachedPIDMap, Section 3.3)."""

import pytest

from repro.core.cache import PageCache
from repro.errors import ConfigurationError


class TestLookup:
    def test_miss_then_hit(self):
        cache = PageCache(4)
        assert not cache.lookup(7)
        cache.admit(7)
        assert cache.lookup(7)

    def test_counters(self):
        cache = PageCache(4)
        cache.lookup(1)
        cache.admit(1)
        cache.lookup(1)
        cache.lookup(2)
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.hit_rate() == pytest.approx(1 / 3)

    def test_hit_rate_empty(self):
        assert PageCache(4).hit_rate() == 0.0

    def test_zero_capacity_always_misses(self):
        cache = PageCache(0)
        cache.admit(1)
        assert not cache.lookup(1)
        assert len(cache) == 0


class TestLRUReplacement:
    def test_evicts_least_recently_used(self):
        cache = PageCache(2)
        cache.admit(1)
        cache.admit(2)
        victim = cache.admit(3)
        assert victim == 1
        assert 1 not in cache
        assert 2 in cache and 3 in cache

    def test_lookup_refreshes(self):
        cache = PageCache(2)
        cache.admit(1)
        cache.admit(2)
        cache.lookup(1)
        cache.admit(3)
        assert 1 in cache
        assert 2 not in cache

    def test_readmit_is_noop(self):
        cache = PageCache(2)
        cache.admit(1)
        cache.admit(2)
        assert cache.admit(1) is None
        assert len(cache) == 2

    def test_capacity_never_exceeded(self):
        cache = PageCache(3)
        for pid in range(10):
            cache.admit(pid)
        assert len(cache) == 3

    def test_page_ids_snapshot(self):
        cache = PageCache(3)
        for pid in (5, 6, 7):
            cache.admit(pid)
        assert sorted(cache.page_ids()) == [5, 6, 7]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            PageCache(-1)


class TestNaiveModel:
    def test_naive_hit_rate_formula(self):
        """The paper's B/(S+L) approximation (Section 3.3)."""
        assert PageCache.naive_hit_rate(10, 100) == 0.1

    def test_naive_hit_rate_capped(self):
        assert PageCache.naive_hit_rate(200, 100) == 1.0

    def test_naive_hit_rate_empty_graph(self):
        assert PageCache.naive_hit_rate(10, 0) == 0.0
