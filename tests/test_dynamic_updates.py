"""Delta-page overlay, crash recovery, compaction, and the rebuild
equivalence property: a base database plus ``repro.dynamic`` batches
must be indistinguishable (to every kernel) from building the final
graph from scratch."""

import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BFSKernel, GTSEngine, PageRankKernel, WCCKernel
from repro.dynamic import (
    DynamicGraphDatabase,
    UpdateBatch,
    WriteAheadLog,
    compact,
    maybe_compact,
    materialise_graph,
    open_dynamic_database,
)
from repro.errors import UpdateError
from repro.format import PageFormatConfig, build_database
from repro.format.io import save_database
from repro.graphgen import Graph, generate_rmat
from repro.hardware.specs import scaled_workstation


def _line_db(small_config, num_vertices=6):
    vids = np.arange(num_vertices - 1)
    graph = Graph.from_edges(num_vertices, vids, vids + 1)
    return build_database(graph, small_config)


def _rebuild_reference(db, config):
    """Build a from-scratch database over the dynamic DB's graph."""
    return build_database(materialise_graph(db), config)


def _run_all(db, machine):
    engine = GTSEngine(db, machine)
    bfs = engine.run(BFSKernel(start_vertex=0))
    pr = engine.run(PageRankKernel(iterations=5))
    wcc = engine.run(WCCKernel())
    return bfs.values["level"], pr.values["rank"], wcc.values["component"]


def assert_equivalent(dyn_db, machine, config):
    """Kernel results on the overlay == results on a clean rebuild."""
    ref_db = _rebuild_reference(dyn_db, config)
    got_bfs, got_pr, got_wcc = _run_all(dyn_db, machine)
    want_bfs, want_pr, want_wcc = _run_all(ref_db, machine)
    np.testing.assert_array_equal(got_bfs, want_bfs)
    np.testing.assert_allclose(got_pr, want_pr, rtol=1e-10, atol=1e-12)
    np.testing.assert_array_equal(got_wcc, want_wcc)


class TestOverlaySemantics:
    def test_insert_appears_in_page_and_neighbors(self, small_config):
        db = DynamicGraphDatabase(_line_db(small_config))
        report = db.apply(UpdateBatch().insert_edge(0, 4))
        assert report.inserted_edges == 1
        assert 4 in db.effective_neighbors(0)
        assert db.num_edges == 6
        assert db.out_degrees[0] == 2
        db.validate()

    def test_delete_removes_all_parallel_copies(self, small_config):
        vids = np.array([0, 0, 1])
        graph = Graph.from_edges(3, vids, np.array([1, 1, 2]))
        db = DynamicGraphDatabase(build_database(graph, small_config))
        report = db.apply(UpdateBatch().delete_edge(0, 1))
        assert report.deleted_edges == 2
        assert len(db.effective_neighbors(0)) == 0
        assert db.out_degrees[0] == 0
        assert db.num_edges == 1
        db.validate()

    def test_delete_missing_edge_rejected_before_wal(self, small_config, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "log.wal"))
        db = DynamicGraphDatabase(_line_db(small_config), wal=wal)
        with pytest.raises(UpdateError):
            db.apply(UpdateBatch().delete_edge(0, 5))
        # The failed batch must not reach the log.
        assert wal.records_appended == 0
        assert db.applied_batches == 0

    def test_endpoint_out_of_range_rejected(self, small_config):
        db = DynamicGraphDatabase(_line_db(small_config))
        with pytest.raises(UpdateError):
            db.apply(UpdateBatch().insert_edge(0, 6))
        with pytest.raises(UpdateError):
            db.apply(UpdateBatch().insert_edge(17, 0))

    def test_insert_then_delete_within_batch(self, small_config):
        db = DynamicGraphDatabase(_line_db(small_config))
        db.apply(UpdateBatch().insert_edge(0, 3).delete_edge(0, 3))
        assert 3 not in db.effective_neighbors(0)
        assert db.num_edges == 5
        db.validate()

    def test_new_vertices_get_extension_pages(self, small_config):
        db = DynamicGraphDatabase(_line_db(small_config))
        before = db.num_pages
        db.apply(UpdateBatch().add_vertices(2)
                 .insert_edge(6, 7).insert_edge(5, 6))
        assert db.num_vertices == 8
        assert db.num_pages > before
        assert db.num_extension_pages >= 1
        assert list(db.effective_neighbors(6)) == [7]
        assert 6 in db.effective_neighbors(5)
        db.validate()

    def test_bulk_vertex_add_spans_pages(self, small_config):
        db = DynamicGraphDatabase(_line_db(small_config))
        capacity = db._ext_capacity()
        count = capacity * 3 + 1
        db.apply(UpdateBatch().add_vertices(count))
        assert db.num_vertices == 6 + count
        assert db.num_extension_pages == 4
        # Every new vertex resolves through vertex_page/RVT.
        for vid in (6, 6 + capacity, 6 + count - 1):
            entry = db.directory[db.page_for_vertex(vid)]
            assert entry.start_vid <= vid < (entry.start_vid
                                             + entry.num_records)
        assert len(db.effective_neighbors(6 + count - 1)) == 0
        db.apply(UpdateBatch().insert_edge(6 + count - 1, 0))
        assert 0 in db.effective_neighbors(6 + count - 1)
        db.validate()

    def test_edge_to_new_vertex_in_same_batch(self, small_config):
        db = DynamicGraphDatabase(_line_db(small_config))
        # Vertex 6 only exists once the 'v' op in this batch lands; the
        # trial validator must account for it.
        db.apply(UpdateBatch().add_vertices(1).insert_edge(0, 6))
        assert 6 in db.effective_neighbors(0)
        db.validate()

    def test_large_page_vertex_overlay(self, small_config):
        # Degree >> max_slot_number forces a large-page run for the hub.
        hub_deg = small_config.max_slot_number * 3
        sources = np.concatenate([np.zeros(hub_deg, dtype=np.int64), [1]])
        targets = np.concatenate([(np.arange(hub_deg) % 50) + 1, [2]])
        graph = Graph.from_edges(51, sources, targets)
        db = DynamicGraphDatabase(build_database(graph, small_config))
        assert any(not db.is_small(pid) for pid in range(db.num_pages))

        db.apply(UpdateBatch().insert_edge(0, 50))
        assert 50 in db.effective_neighbors(0)
        db.apply(UpdateBatch().delete_edge(0, 1))
        assert 1 not in db.effective_neighbors(0)
        db.validate()

    def test_weighted_insert(self, weighted_config):
        vids = np.arange(3)
        graph = Graph.from_edges(
            4, vids, vids + 1, weights=np.array([1.0, 2.0, 3.0]))
        db = DynamicGraphDatabase(build_database(graph, weighted_config))
        db.apply(UpdateBatch().insert_edge(0, 3, weight=9.0))
        page = db.page(db.vertex_page[0])
        idx = int(np.where(page.adj_vids == 3)[0][0])
        assert page.adj_weights[idx] == 9.0
        db.validate()

    def test_topology_version_bumps(self, small_config):
        db = DynamicGraphDatabase(_line_db(small_config))
        v0 = db.topology_version
        db.apply(UpdateBatch().insert_edge(0, 2))
        assert db.topology_version == v0 + 1
        db.apply(UpdateBatch().delete_edge(0, 2))
        assert db.topology_version == v0 + 2

    def test_dynamic_stats_shape(self, small_config):
        db = DynamicGraphDatabase(_line_db(small_config))
        db.apply(UpdateBatch().insert_edge(0, 2).delete_edge(1, 2)
                 .add_vertices(1))
        stats = db.dynamic_stats()
        assert stats["applied_batches"] == 1
        assert stats["inserted_edges"] == 1
        assert stats["deleted_edges"] == 1
        assert stats["added_vertices"] == 1
        assert stats["delta_bytes"] > 0
        assert stats["delta_pages"] >= 1


class TestEngineIntegration:
    def test_equivalence_after_mixed_batches(self, rmat_db, small_config,
                                             machine):
        db = DynamicGraphDatabase(rmat_db)
        rng = np.random.default_rng(7)
        n = db.num_vertices
        batch = UpdateBatch()
        for _ in range(40):
            batch.insert_edge(int(rng.integers(n)), int(rng.integers(n)))
        victims = [v for v in range(n) if db.out_degrees[v] > 0][:15]
        for v in victims:
            batch.delete_edge(v, int(db.effective_neighbors(v)[0]))
        batch.add_vertices(3).insert_edge(n, 0).insert_edge(0, n + 2)
        db.apply(batch)
        assert_equivalent(db, machine, small_config)

    def test_engine_reindexes_after_mutation(self, rmat_db, machine):
        """One engine observes results from both before and after apply."""
        db = DynamicGraphDatabase(rmat_db)
        engine = GTSEngine(db, machine)
        before = engine.run(WCCKernel()).values["component"]
        # Bridge two different components if any exist, else add a vertex.
        labels = np.unique(before)
        if len(labels) > 1:
            a = int(np.flatnonzero(before == labels[0])[0])
            b = int(np.flatnonzero(before == labels[1])[0])
            db.apply(UpdateBatch().insert_edge(a, b).insert_edge(b, a))
        else:
            db.apply(UpdateBatch().add_vertices(1))
        after = engine.run(WCCKernel()).values["component"]
        assert len(after) == db.num_vertices
        if len(labels) > 1:
            assert after[a] == after[b]

    def test_pagerank_with_deletes_on_rmat(self, rmat_db, small_config,
                                           machine):
        db = DynamicGraphDatabase(rmat_db)
        batch = UpdateBatch()
        hub = int(np.argmax(db.out_degrees))
        # delete_edge removes every parallel copy, so dedupe targets.
        for dst in np.unique(db.effective_neighbors(hub))[:5]:
            batch.delete_edge(hub, int(dst))
        db.apply(batch)
        ref = _rebuild_reference(db, small_config)
        got = GTSEngine(db, machine).run(PageRankKernel(iterations=5))
        want = GTSEngine(ref, machine).run(PageRankKernel(iterations=5))
        np.testing.assert_allclose(
            got.values["rank"], want.values["rank"], rtol=1e-10)


class TestCrashRecovery:
    def _saved_prefix(self, tmp_path, small_config):
        db = _line_db(small_config)
        prefix = str(tmp_path / "crash")
        save_database(db, prefix)
        return prefix

    def test_reopen_replays_wal(self, tmp_path, small_config):
        prefix = self._saved_prefix(tmp_path, small_config)
        db = open_dynamic_database(prefix)
        db.apply(UpdateBatch().insert_edge(0, 3))
        db.apply(UpdateBatch().add_vertices(1).insert_edge(6, 0))
        del db  # "crash": nothing but base files + WAL survive

        db2 = open_dynamic_database(prefix)
        assert 3 in db2.effective_neighbors(0)
        assert list(db2.effective_neighbors(6)) == [0]
        assert db2.num_vertices == 7
        db2.validate()

    def test_reopen_after_torn_tail(self, tmp_path, small_config):
        prefix = self._saved_prefix(tmp_path, small_config)
        db = open_dynamic_database(prefix)
        db.apply(UpdateBatch().insert_edge(0, 2))
        db.apply(UpdateBatch().insert_edge(0, 3))
        wal_path = prefix + ".wal"
        with open(wal_path, "r+b") as handle:
            handle.truncate(os.path.getsize(wal_path) - 3)

        db2 = open_dynamic_database(prefix)
        # First batch survives; the torn second one is truncated away.
        assert 2 in db2.effective_neighbors(0)
        assert 3 not in db2.effective_neighbors(0)
        # The repaired log keeps accepting work.
        db2.apply(UpdateBatch().insert_edge(0, 4))
        db3 = open_dynamic_database(prefix)
        assert 4 in db3.effective_neighbors(0)
        db3.validate()

    def test_crash_between_base_save_and_wal_reset(self, tmp_path,
                                                   small_config):
        """The compacted base reaches disk but the WAL reset does not:
        the stale log must be discarded, never replayed (its inserts
        would duplicate and its deletes would fail on the folded base).
        """
        prefix = self._saved_prefix(tmp_path, small_config)
        db = open_dynamic_database(prefix)
        db.apply(UpdateBatch().insert_edge(0, 3))
        db.apply(UpdateBatch().delete_edge(0, 1))
        new_base = build_database(materialise_graph(db), small_config)
        save_database(new_base, prefix, wal_epoch=db.base_epoch + 1)
        del db  # crash before wal.reset()

        reopened = open_dynamic_database(prefix)
        assert list(reopened.effective_neighbors(0)) == [3]
        assert reopened.num_edges == 5
        assert reopened.base_epoch == 1
        reopened.validate()
        # The discarded log was reset to the base's epoch; new batches
        # log and replay normally.
        reopened.apply(UpdateBatch().insert_edge(0, 4))
        again = open_dynamic_database(prefix)
        assert 4 in again.effective_neighbors(0)
        again.validate()

    def test_wal_ahead_of_base_is_rejected(self, tmp_path, small_config):
        prefix = self._saved_prefix(tmp_path, small_config)
        WriteAheadLog(prefix + ".wal", epoch=3)
        from repro.errors import WALError
        with pytest.raises(WALError, match="ahead of base epoch"):
            open_dynamic_database(prefix)

    def test_atomic_save_leaves_no_temp_files(self, tmp_path, small_config):
        db = _line_db(small_config)
        prefix = str(tmp_path / "atomic")
        save_database(db, prefix)
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []


class TestCompaction:
    def test_compact_folds_deltas(self, rmat_db, small_config, machine):
        db = DynamicGraphDatabase(rmat_db)
        rng = np.random.default_rng(3)
        n = db.num_vertices
        batch = UpdateBatch()
        for _ in range(25):
            batch.insert_edge(int(rng.integers(n)), int(rng.integers(n)))
        db.apply(batch)
        before_bfs, before_pr, before_wcc = _run_all(db, machine)

        report = compact(db)
        assert report.folded_bytes > 0
        assert db.num_delta_pages == 0
        assert db.num_extension_pages == 0
        assert db.dynamic_stats()["compactions"] == 1

        after_bfs, after_pr, after_wcc = _run_all(db, machine)
        np.testing.assert_array_equal(before_bfs, after_bfs)
        np.testing.assert_allclose(before_pr, after_pr, rtol=1e-10)
        np.testing.assert_array_equal(before_wcc, after_wcc)
        db.validate()

    def test_compact_persists_and_resets_wal(self, tmp_path, small_config):
        db = _line_db(small_config)
        prefix = str(tmp_path / "cmp")
        save_database(db, prefix)
        dyn = open_dynamic_database(prefix)
        dyn.apply(UpdateBatch().insert_edge(0, 3))
        report = compact(dyn, save_prefix=prefix)
        assert report.saved_prefix == prefix
        assert WriteAheadLog(prefix + ".wal").replay().num_batches == 0

        reopened = open_dynamic_database(prefix)
        assert 3 in reopened.effective_neighbors(0)
        assert reopened.num_delta_pages == 0
        reopened.validate()

    def test_compact_bumps_epoch_in_base_and_wal(self, tmp_path,
                                                 small_config):
        db = _line_db(small_config)
        prefix = str(tmp_path / "epoch")
        save_database(db, prefix)
        dyn = open_dynamic_database(prefix)
        assert dyn.base_epoch == 0
        dyn.apply(UpdateBatch().insert_edge(0, 3))
        compact(dyn, save_prefix=prefix)
        assert dyn.base_epoch == 1
        assert WriteAheadLog(prefix + ".wal").epoch == 1

        reopened = open_dynamic_database(prefix)
        assert reopened.base_epoch == 1
        compact(reopened, save_prefix=prefix)
        assert open_dynamic_database(prefix).base_epoch == 2

    def test_inmemory_compact_keeps_wal(self, tmp_path, small_config):
        """Without a save_prefix the on-disk base never changes, so the
        WAL must keep its records — they are the only durable copy."""
        db = _line_db(small_config)
        prefix = str(tmp_path / "mem")
        save_database(db, prefix)
        dyn = open_dynamic_database(prefix)
        dyn.apply(UpdateBatch().insert_edge(0, 3))
        compact(dyn)  # folds in memory only
        assert dyn.num_delta_pages == 0
        assert WriteAheadLog(prefix + ".wal").replay().num_batches == 1

        reopened = open_dynamic_database(prefix)
        assert 3 in reopened.effective_neighbors(0)
        reopened.validate()

    def test_maybe_compact_threshold(self, small_config):
        db = DynamicGraphDatabase(_line_db(small_config))
        db.apply(UpdateBatch().insert_edge(0, 2))
        assert maybe_compact(db, threshold_bytes=1 << 30) is None
        assert db.num_delta_pages == 1
        report = maybe_compact(db, threshold_bytes=1)
        assert report is not None
        assert db.num_delta_pages == 0


class TestObservability:
    def test_collect_dynamic_metrics(self, small_config):
        from repro.obs import collect_dynamic_metrics
        db = DynamicGraphDatabase(_line_db(small_config))
        db.apply(UpdateBatch().insert_edge(0, 2))
        registry = collect_dynamic_metrics(db)
        snapshot = registry.as_dict()["metrics"]
        assert snapshot["dynamic.applied_batches"]["value"] == 1
        assert snapshot["dynamic.inserted_edges"]["value"] == 1
        assert snapshot["dynamic.delta_bytes"]["value"] > 0

    def test_apply_emits_trace_instants(self, small_config, tmp_path):
        from repro.obs import TraceRecorder
        recorder = TraceRecorder()
        wal = WriteAheadLog(str(tmp_path / "t.wal"), recorder=recorder)
        db = DynamicGraphDatabase(_line_db(small_config), wal=wal,
                                  recorder=recorder)
        db.apply(UpdateBatch().insert_edge(0, 2))
        counts = recorder.counts()
        assert counts.get("wal_append") == 1
        assert counts.get("delta_apply") == 1

    def test_dynamic_stats_report_epoch(self, small_config):
        db = DynamicGraphDatabase(_line_db(small_config))
        assert db.dynamic_stats()["base_epoch"] == 0


# ---------------------------------------------------------------------------
# Property: base + random batches == from-scratch rebuild, including
# through a simulated crash (WAL replay) and a compaction.
# ---------------------------------------------------------------------------

@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), crash=st.booleans())
def test_property_batches_equal_rebuild(seed, crash):
    rng = np.random.default_rng(seed)
    config = PageFormatConfig(2, 2, 2048)
    machine = scaled_workstation(num_gpus=1, num_ssds=1)

    graph = generate_rmat(7, edge_factor=8, seed=int(rng.integers(1 << 30)))
    base = build_database(graph, config)

    with tempfile.TemporaryDirectory() as tmp:
        prefix = os.path.join(tmp, "prop")
        save_database(base, prefix)
        db = open_dynamic_database(prefix)

        for _ in range(int(rng.integers(1, 4))):
            batch = UpdateBatch()
            n = db.num_vertices
            for _ in range(int(rng.integers(1, 12))):
                batch.insert_edge(int(rng.integers(n)), int(rng.integers(n)))
            # Delete a real edge when one exists.
            for v in rng.permutation(n)[:3]:
                nbrs = db.effective_neighbors(int(v))
                if len(nbrs):
                    batch.delete_edge(int(v), int(nbrs[0]))
                    break
            if rng.random() < 0.3:
                extra = int(rng.integers(1, 3))
                batch.add_vertices(extra).insert_edge(
                    int(rng.integers(n)), n)
            db.apply(batch)

        if crash:
            db = open_dynamic_database(prefix)  # replay from the WAL

        ref = build_database(materialise_graph(db), config)
        got = _run_all(db, machine)
        want = _run_all(ref, machine)
        np.testing.assert_array_equal(got[0], want[0])
        np.testing.assert_allclose(got[1], want[1], rtol=1e-10, atol=1e-12)
        np.testing.assert_array_equal(got[2], want[2])

        # And the equivalence must survive folding deltas into the base.
        compact(db, save_prefix=prefix)
        folded = _run_all(db, machine)
        np.testing.assert_array_equal(folded[0], want[0])
        np.testing.assert_allclose(folded[1], want[1], rtol=1e-10,
                                   atol=1e-12)
        np.testing.assert_array_equal(folded[2], want[2])
        db.validate()
