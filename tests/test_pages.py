"""Tests for small/large slotted pages, including byte round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError
from repro.format import PageFormatConfig
from repro.format.page import LargePage, PageKind, SmallPage
from repro.units import KB


def _config(weight_bytes=0, page_size=2 * KB):
    return PageFormatConfig(page_id_bytes=2, slot_bytes=2,
                            page_size=page_size, weight_bytes=weight_bytes)


def _small_page(config=None):
    """Three records: degrees 2, 0, 1."""
    config = config or _config()
    return SmallPage(
        page_id=0, start_vid=10,
        adj_indptr=[0, 2, 2, 3],
        adj_pids=[0, 1, 0],
        adj_slots=[0, 3, 2],
        adj_vids=[10, 99, 12],
        config=config,
    )


class TestSmallPage:
    def test_counts(self):
        page = _small_page()
        assert page.num_records == 3
        assert page.num_edges == 3
        assert page.kind is PageKind.SMALL

    def test_vids_are_consecutive(self):
        assert list(_small_page().vids()) == [10, 11, 12]

    def test_degrees(self):
        assert list(_small_page().degrees()) == [2, 0, 1]

    def test_used_bytes(self):
        page = _small_page()
        config = page.config
        records = 3 * config.adjlist_size_bytes + 3 * config.adjacency_entry_bytes
        slots = 3 * config.slot_entry_bytes
        assert page.used_bytes() == records + slots

    def test_inconsistent_indptr_rejected(self):
        with pytest.raises(FormatError):
            SmallPage(0, 0, [0, 5], [1], [1], [1], _config())

    def test_serialization_round_trip(self):
        page = _small_page()
        data = page.to_bytes()
        assert len(data) == page.config.page_size
        parsed = SmallPage.from_bytes(data, 0, page.num_records, page.config)
        assert parsed.start_vid == page.start_vid
        assert np.array_equal(parsed.adj_indptr, page.adj_indptr)
        assert np.array_equal(parsed.adj_pids, page.adj_pids)
        assert np.array_equal(parsed.adj_slots, page.adj_slots)

    def test_serialization_with_weights(self):
        config = _config(weight_bytes=4)
        page = SmallPage(0, 0, [0, 2], [1, 2], [0, 0], [5, 9], config,
                         adj_weights=[1.5, 2.5])
        parsed = SmallPage.from_bytes(page.to_bytes(), 0, 1, config)
        assert np.allclose(parsed.adj_weights, [1.5, 2.5])

    def test_overflowing_page_rejected_on_serialize(self):
        config = _config(page_size=2 * KB)
        degree = config.max_degree_in_one_page() + 50
        page = SmallPage(0, 0, [0, degree],
                         np.zeros(degree), np.zeros(degree),
                         np.zeros(degree), config)
        with pytest.raises(FormatError):
            page.to_bytes()

    def test_field_overflow_rejected(self):
        config = _config()
        page = SmallPage(0, 0, [0, 1], [999999], [0], [1], config)
        with pytest.raises(FormatError):
            page.to_bytes()  # 999999 does not fit a 2-byte page ID


class TestLargePage:
    def _large(self, config=None, degree=5, total=12):
        config = config or _config()
        return LargePage(
            page_id=7, vid=3, chunk_index=1,
            adj_pids=list(range(degree)),
            adj_slots=[0] * degree,
            adj_vids=list(range(degree)),
            config=config, total_degree=total)

    def test_counts(self):
        page = self._large()
        assert page.num_records == 1
        assert page.num_edges == 5
        assert page.kind is PageKind.LARGE

    def test_vids_matches_small_page_interface(self):
        assert list(self._large().vids()) == [3]

    def test_total_degree_spans_chunks(self):
        page = self._large(degree=5, total=12)
        assert page.total_degree == 12

    def test_total_degree_defaults_to_chunk_size(self):
        config = _config()
        page = LargePage(0, 1, 0, [2], [0], [2], config)
        assert page.total_degree == 1

    def test_serialization_round_trip(self):
        page = self._large()
        parsed = LargePage.from_bytes(page.to_bytes(), 7, 1, page.config,
                                      total_degree=12)
        assert parsed.vid == 3
        assert np.array_equal(parsed.adj_pids, page.adj_pids)
        assert np.array_equal(parsed.adj_slots, page.adj_slots)
        assert parsed.total_degree == 12

    def test_used_bytes(self):
        page = self._large(degree=5)
        config = page.config
        assert page.used_bytes() == (config.slot_entry_bytes
                                     + config.adjlist_size_bytes
                                     + 5 * config.adjacency_entry_bytes)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_small_page_round_trip_property(data):
    """Property: serialize/parse preserves any in-capacity small page."""
    config = _config()
    num_records = data.draw(st.integers(1, 20))
    degrees = data.draw(st.lists(st.integers(0, 10),
                                 min_size=num_records,
                                 max_size=num_records))
    indptr = np.concatenate([[0], np.cumsum(degrees)])
    num_edges = int(indptr[-1])
    pids = data.draw(st.lists(st.integers(0, 65535),
                              min_size=num_edges, max_size=num_edges))
    slots = data.draw(st.lists(st.integers(0, 65535),
                               min_size=num_edges, max_size=num_edges))
    start_vid = data.draw(st.integers(0, 10000))
    page = SmallPage(0, start_vid, indptr, pids, slots,
                     np.zeros(num_edges, dtype=np.int64), config)
    parsed = SmallPage.from_bytes(page.to_bytes(), 0, num_records, config)
    assert parsed.start_vid == start_vid
    assert np.array_equal(parsed.adj_indptr, page.adj_indptr)
    assert np.array_equal(parsed.adj_pids, page.adj_pids)
    assert np.array_equal(parsed.adj_slots, page.adj_slots)
