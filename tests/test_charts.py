"""Tests for the ASCII bar-chart renderer."""

import pytest

from repro.bench.charts import BAR, chart_from_results, render_bar_chart


class TestRenderBarChart:
    def _chart(self, log_scale=True):
        return render_bar_chart(
            "Demo",
            ["g1", "g2"],
            {
                "fast": {"g1": 0.001, "g2": 0.002},
                "slow": {"g1": 0.1, "g2": "O.O.M."},
            },
            width=20, log_scale=log_scale)

    def test_contains_groups_and_series(self):
        chart = self._chart()
        for token in ("Demo", "g1", "g2", "fast", "slow"):
            assert token in chart

    def test_oom_rendered_as_annotation_without_bar(self):
        chart = self._chart()
        oom_line = next(line for line in chart.splitlines()
                        if "O.O.M." in line)
        assert BAR not in oom_line

    def test_larger_value_longer_bar(self):
        chart = self._chart()
        lines = chart.splitlines()
        g1_fast = next(l for l in lines if l.strip().startswith("fast")
                       and "1.0 ms" in l)
        g1_slow = next(l for l in lines if l.strip().startswith("slow")
                       and "100.0 ms" in l)
        assert g1_slow.count(BAR) > g1_fast.count(BAR)

    def test_log_scale_compresses_ratios(self):
        linear = self._chart(log_scale=False)
        log = self._chart(log_scale=True)

        def bar_of(chart, marker):
            return next(l for l in chart.splitlines()
                        if marker in l and "|" in l).count(BAR)

        # 100x ratio: linear nearly flattens the small bar, log keeps
        # both readable.
        assert bar_of(linear, "1.0 ms") <= 1
        assert bar_of(log, "1.0 ms") >= 1
        assert bar_of(log, "100.0 ms") < 100 * max(
            bar_of(log, "1.0 ms"), 1)

    def test_minimum_positive_bar_is_one_cell(self):
        chart = render_bar_chart(
            "T", ["g"], {"a": {"g": 1e-9}, "b": {"g": 1.0}},
            width=10)
        smallest = next(l for l in chart.splitlines()
                        if l.strip().startswith("a"))
        assert smallest.count(BAR) == 1

    def test_bars_never_exceed_width(self):
        chart = render_bar_chart(
            "T", ["g"], {"a": {"g": 5.0}, "b": {"g": 500.0}}, width=12)
        assert max(line.count(BAR) for line in chart.splitlines()) <= 12

    def test_all_strings_chart(self):
        chart = render_bar_chart(
            "T", ["g"], {"a": {"g": "O.O.M."}}, width=10)
        assert "O.O.M." in chart

    def test_missing_group_renders_dash(self):
        chart = render_bar_chart("T", ["g1", "g2"],
                                 {"a": {"g1": 1.0}}, width=10)
        assert "-" in chart


class TestChartFromResults:
    def test_unwraps_run_results(self):
        class Dummy:
            elapsed_seconds = 0.5
        chart = chart_from_results("T", ["g"],
                                   {"sys": {"g": Dummy()}})
        assert "500.0 ms" in chart

    def test_passes_markers_through(self):
        chart = chart_from_results("T", ["g"],
                                   {"sys": {"g": "O.O.M."}})
        assert "O.O.M." in chart
