"""Tests for Strategy-P / Strategy-S page assignment and synchronisation."""

import pytest

from repro.core.strategies import (
    PerformanceStrategy,
    ScalabilityStrategy,
    make_strategy,
)
from repro.errors import ConfigurationError
from repro.hardware.machine import MachineRuntime
from repro.hardware.specs import paper_workstation
from repro.units import MB


def _runtime():
    return MachineRuntime(paper_workstation(), page_bytes=1 * MB)


class TestAssignment:
    def test_performance_partitions_pages(self):
        strategy = PerformanceStrategy()
        assert strategy.assign(0, 2) == (0,)
        assert strategy.assign(1, 2) == (1,)
        assert strategy.assign(2, 2) == (0,)

    def test_performance_balances_load(self):
        strategy = PerformanceStrategy()
        counts = [0, 0, 0]
        for pid in range(99):
            counts[strategy.assign(pid, 3)[0]] += 1
        assert counts == [33, 33, 33]

    def test_scalability_replicates_pages(self):
        strategy = ScalabilityStrategy()
        assert strategy.assign(5, 3) == (0, 1, 2)


class TestWASizing:
    def test_performance_replicates_wa(self):
        assert PerformanceStrategy().wa_gpu_bytes(100, 4) == 100

    def test_scalability_partitions_wa(self):
        assert ScalabilityStrategy().wa_gpu_bytes(100, 4) == 25

    def test_scalability_rounds_up(self):
        assert ScalabilityStrategy().wa_gpu_bytes(10, 3) == 4


class TestBroadcast:
    def test_performance_broadcast_is_concurrent(self):
        runtime = _runtime()
        ready = PerformanceStrategy().book_wa_broadcast(runtime, 16 * MB)
        assert len(ready) == 2
        assert ready[0] == pytest.approx(ready[1])

    def test_scalability_broadcast_moves_chunks(self):
        runtime = _runtime()
        full = PerformanceStrategy().book_wa_broadcast(
            _runtime(), 16 * MB)[0]
        chunk = ScalabilityStrategy().book_wa_broadcast(
            runtime, 16 * MB)[0]
        assert chunk < full  # half the bytes per GPU


class TestSync:
    def test_performance_sync_uses_p2p_merge(self):
        runtime = _runtime()
        end = PerformanceStrategy().book_sync(
            runtime, 16 * MB, earliest=1.0, sync_full_wa=True)
        # (N-1) p2p copies land on the master GPU's copy engine.
        assert runtime.gpus[0].copy_engine.num_activities == 1
        assert runtime.host_bus.num_activities == 1
        assert end > 1.0

    def test_scalability_sync_serializes_chunks(self):
        runtime = _runtime()
        ScalabilityStrategy().book_sync(
            runtime, 16 * MB, earliest=0.0, sync_full_wa=True)
        assert runtime.host_bus.num_activities == 2

    def test_traversal_sync_is_cheap(self):
        runtime = _runtime()
        full = PerformanceStrategy().book_sync(
            _runtime(), 16 * MB, earliest=0.0, sync_full_wa=True)
        light = PerformanceStrategy().book_sync(
            runtime, 16 * MB, earliest=0.0, sync_full_wa=False)
        assert light < full


class TestFactory:
    def test_names(self):
        assert isinstance(make_strategy("performance"),
                          PerformanceStrategy)
        assert isinstance(make_strategy("scalability"),
                          ScalabilityStrategy)

    def test_short_names(self):
        assert isinstance(make_strategy("P"), PerformanceStrategy)
        assert isinstance(make_strategy("S"), ScalabilityStrategy)

    def test_instance_passthrough(self):
        strategy = PerformanceStrategy()
        assert make_strategy(strategy) is strategy

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_strategy("hyperspeed")
