"""Tests for hardware specs, scaling and kernel timing."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.specs import (
    DEFAULT_SCALE_FACTOR,
    GPUSpec,
    HDD_SPEC,
    MachineSpec,
    PCIeSpec,
    SSD_SPEC,
    paper_workstation,
    scaled_workstation,
)
from repro.units import GB


class TestPCIeSpec:
    def test_chunk_faster_than_stream(self):
        pcie = PCIeSpec()
        assert pcie.chunk_bandwidth > pcie.stream_bandwidth

    def test_paper_rates(self):
        """Section 5.1: c1 ~ 16 GB/s, c2 ~ 6 GB/s for PCI-E 3.0 x16."""
        pcie = PCIeSpec()
        assert pcie.chunk_bandwidth == 16 * GB
        assert pcie.stream_bandwidth == 6 * GB

    def test_copy_times_include_latency(self):
        pcie = PCIeSpec(latency=1e-6)
        assert pcie.chunk_copy_time(0) == 1e-6
        assert pcie.stream_copy_time(6 * GB) == pytest.approx(1.0 + 1e-6)

    def test_p2p_copy_time(self):
        pcie = PCIeSpec(latency=0.0)
        assert pcie.p2p_copy_time(20 * GB) == pytest.approx(1.0)


class TestGPUSpec:
    def test_paper_device_memory(self):
        assert GPUSpec().device_memory == 12 * GB

    def test_stream_time_slower_than_device_time(self):
        gpu = GPUSpec()
        steps = 1e6
        assert gpu.kernel_stream_time(steps, 10) > gpu.kernel_device_time(
            steps, 10)

    def test_stream_time_includes_launch_overhead(self):
        gpu = GPUSpec()
        assert gpu.kernel_stream_time(0, 10) == gpu.kernel_launch_overhead

    def test_device_time_scales_with_cycles(self):
        gpu = GPUSpec()
        assert gpu.kernel_device_time(100, 20) == pytest.approx(
            2 * gpu.kernel_device_time(100, 10))

    def test_underutilisation_ratio(self):
        gpu = GPUSpec(kernel_launch_overhead=0.0)
        ratio = (gpu.kernel_stream_time(1000, 10)
                 / gpu.kernel_device_time(1000, 10))
        assert ratio == pytest.approx(1.0 / gpu.single_stream_fraction)


class TestStorageSpecs:
    def test_ssd_faster_than_hdd(self):
        assert SSD_SPEC.read_bandwidth > 10 * HDD_SPEC.read_bandwidth

    def test_hdd_latency_dominates_small_reads(self):
        assert HDD_SPEC.read_time(4096) == pytest.approx(
            HDD_SPEC.access_latency, rel=0.01)

    def test_read_time_scales_with_bytes(self):
        big = SSD_SPEC.read_time(100 * GB)
        small = SSD_SPEC.read_time(1 * GB)
        assert big > 50 * small


class TestMachineSpec:
    def test_paper_workstation_defaults(self):
        machine = paper_workstation()
        assert machine.num_gpus == 2
        assert machine.num_storages == 2
        assert machine.main_memory == 128 * GB

    def test_needs_a_gpu(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(gpus=(), storages=(), main_memory=1)

    def test_needs_positive_memory(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(gpus=(GPUSpec(),), storages=(), main_memory=0)

    def test_scaled_divides_capacities(self):
        machine = paper_workstation().scaled(1024)
        assert machine.main_memory == 128 * GB // 1024
        assert machine.gpus[0].device_memory == 12 * GB // 1024

    def test_scaled_keeps_rates(self):
        base = paper_workstation()
        scaled = base.scaled(8192)
        assert scaled.pcie.stream_bandwidth == base.pcie.stream_bandwidth
        assert scaled.gpus[0].effective_hz == base.gpus[0].effective_hz
        assert (scaled.storages[0].read_bandwidth
                == base.storages[0].read_bandwidth)

    def test_scaled_divides_fixed_overheads(self):
        base = paper_workstation()
        scaled = base.scaled(8192)
        assert scaled.pcie.latency == base.pcie.latency / 8192
        assert (scaled.gpus[0].kernel_launch_overhead
                == base.gpus[0].kernel_launch_overhead / 8192)

    def test_scaled_workstation_uses_default_factor(self):
        machine = scaled_workstation()
        assert machine.main_memory == 128 * GB // DEFAULT_SCALE_FACTOR

    def test_hdd_variant(self):
        machine = paper_workstation(storage_spec=HDD_SPEC)
        assert "HDD" in machine.storages[0].name

    def test_gpu_count_parameter(self):
        assert paper_workstation(num_gpus=4).num_gpus == 4
