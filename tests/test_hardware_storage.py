"""Tests for the storage array, MM buffer, and machine runtime."""

import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    OutOfMemoryError,
    SimulationError,
)
from repro.hardware.machine import MachineRuntime
from repro.hardware.memory import MainMemoryBuffer
from repro.hardware.specs import SSD_SPEC, GPUSpec, paper_workstation
from repro.hardware.storage import StorageArray
from repro.units import GB, KB, MB


class TestStorageArray:
    def test_mod_striping_default(self):
        array = StorageArray([SSD_SPEC, SSD_SPEC])
        assert array.device_for_page(0) == 0
        assert array.device_for_page(1) == 1
        assert array.device_for_page(2) == 0

    def test_custom_hash(self):
        array = StorageArray([SSD_SPEC, SSD_SPEC],
                             hash_function=lambda pid: 1)
        assert array.device_for_page(99) == 1

    def test_bad_hash_detected(self):
        array = StorageArray([SSD_SPEC], hash_function=lambda pid: 7)
        with pytest.raises(SimulationError):
            array.device_for_page(0)

    def test_needs_a_device(self):
        with pytest.raises(SimulationError):
            StorageArray([])

    def test_fetches_serialize_per_device(self):
        array = StorageArray([SSD_SPEC])
        _, end1 = array.fetch(0, 1 * MB, earliest=0.0)
        start2, _ = array.fetch(1, 1 * MB, earliest=0.0)
        assert start2 == end1

    def test_striped_fetches_overlap(self):
        array = StorageArray([SSD_SPEC, SSD_SPEC])
        start1, _ = array.fetch(0, 1 * MB, earliest=0.0)
        start2, _ = array.fetch(1, 1 * MB, earliest=0.0)
        assert start1 == start2 == 0.0

    def test_aggregate_bandwidth(self):
        array = StorageArray([SSD_SPEC, SSD_SPEC])
        assert array.aggregate_bandwidth() == 2 * SSD_SPEC.read_bandwidth

    def test_capacity_check(self):
        array = StorageArray([SSD_SPEC])
        with pytest.raises(CapacityError):
            array.check_fits(SSD_SPEC.capacity + 1)

    def test_counters(self):
        array = StorageArray([SSD_SPEC])
        array.fetch(0, 100, 0.0)
        array.fetch(1, 200, 0.0)
        assert array.pages_fetched == 2
        assert array.bytes_read == 300


class TestMainMemoryBuffer:
    def test_capacity_in_pages(self):
        buffer = MainMemoryBuffer(10 * KB, 2 * KB)
        assert buffer.capacity_pages == 5

    def test_lookup_miss_then_hit(self):
        buffer = MainMemoryBuffer(10 * KB, 2 * KB)
        assert not buffer.lookup(3)
        buffer.admit(3)
        assert buffer.lookup(3)
        assert buffer.hits == 1
        assert buffer.misses == 1

    def test_pin_policy_keeps_first_pages(self):
        buffer = MainMemoryBuffer(4 * KB, 2 * KB, policy="pin")
        buffer.admit(0)
        buffer.admit(1)
        buffer.admit(2)  # no space: passes through
        assert 0 in buffer
        assert 1 in buffer
        assert 2 not in buffer

    def test_lru_policy_evicts_oldest(self):
        buffer = MainMemoryBuffer(4 * KB, 2 * KB, policy="lru")
        buffer.admit(0)
        buffer.admit(1)
        buffer.admit(2)
        assert 0 not in buffer
        assert 1 in buffer
        assert 2 in buffer

    def test_lru_lookup_refreshes_recency(self):
        buffer = MainMemoryBuffer(4 * KB, 2 * KB, policy="lru")
        buffer.admit(0)
        buffer.admit(1)
        buffer.lookup(0)
        buffer.admit(2)  # evicts 1, not the freshly-touched 0
        assert 0 in buffer
        assert 1 not in buffer

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            MainMemoryBuffer(4 * KB, 2 * KB, policy="mru")

    def test_preload_respects_capacity(self):
        buffer = MainMemoryBuffer(4 * KB, 2 * KB)
        assert buffer.preload(range(10)) == 2
        assert len(buffer) == 2

    def test_zero_capacity_never_stores(self):
        buffer = MainMemoryBuffer(0, 2 * KB)
        buffer.admit(0)
        assert not buffer.lookup(0)

    def test_hit_rate(self):
        buffer = MainMemoryBuffer(4 * KB, 2 * KB)
        buffer.admit(0)
        buffer.lookup(0)
        buffer.lookup(1)
        assert buffer.hit_rate() == 0.5

    def test_page_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MainMemoryBuffer(4 * KB, 0)


class TestMachineRuntime:
    def _runtime(self, **kwargs):
        spec = paper_workstation()
        return MachineRuntime(spec, page_bytes=1 * MB, **kwargs)

    def test_gpu_count(self):
        assert self._runtime().num_gpus == 2

    def test_stream_count_capped_at_32(self):
        runtime = self._runtime(num_streams=64)
        assert runtime.gpus[0].num_streams == 32

    def test_needs_a_stream(self):
        with pytest.raises(ConfigurationError):
            self._runtime(num_streams=0)

    def test_allocation_tracks_and_overflows(self):
        gpu = self._runtime().gpus[0]
        gpu.allocate(6 * GB, "WABuf")
        assert gpu.free_device_memory() == 6 * GB
        with pytest.raises(OutOfMemoryError):
            gpu.allocate(7 * GB, "cache")

    def test_oom_reports_sizes(self):
        gpu = self._runtime().gpus[0]
        with pytest.raises(OutOfMemoryError) as exc:
            gpu.allocate(13 * GB, "WABuf")
        assert exc.value.required_bytes == 13 * GB
        assert exc.value.available_bytes == 12 * GB

    def test_book_kernel_advances_slot_past_capacity(self):
        runtime = self._runtime(num_streams=2)
        gpu = runtime.gpus[0]
        slot = gpu.streams.slots[0]
        end = gpu.book_kernel(slot, 0.0, lane_steps=1e9,
                              cycles_per_lane_step=24.0)
        assert slot.available_at == end
        assert gpu.kernel_invocations == 1
        assert gpu.kernel_busy_time > 0

    def test_concurrent_kernels_bounded_by_device_capacity(self):
        """Two overlapping kernels cannot finish faster than their summed
        device-rate durations."""
        runtime = self._runtime(num_streams=2)
        gpu = runtime.gpus[0]
        steps = 1e9
        device_time = gpu.spec.kernel_device_time(steps, 24.0)
        end0 = gpu.book_kernel(gpu.streams.slots[0], 0.0, steps, 24.0)
        end1 = gpu.book_kernel(gpu.streams.slots[1], 0.0, steps, 24.0)
        assert max(end0, end1) >= 2 * device_time

    def test_barrier_advances_now(self):
        runtime = self._runtime()
        gpu = runtime.gpus[0]
        gpu.book_kernel(gpu.streams.slots[0], 0.0, 1e9, 24.0)
        runtime.barrier()
        assert runtime.now >= gpu.done_at()

    def test_mm_buffer_capped_by_main_memory(self):
        spec = paper_workstation(main_memory=1 * GB)
        runtime = MachineRuntime(spec, page_bytes=1 * MB,
                                 mm_buffer_bytes=100 * GB)
        assert runtime.mm_buffer.capacity_bytes == 1 * GB
