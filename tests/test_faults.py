"""Unit tests for repro.faults: plans, retry policies, the injector's
deterministic draws, fault-aware storage fetches, and page checksums."""

import json
import os
import zlib

import numpy as np
import pytest

from repro.errors import (ConfigurationError, DeviceLostError, FaultError,
                          GTSError, IntegrityError, RetryExhaustedError,
                          SimulationError)
from repro.faults import (DEFAULT_RETRY_POLICY, FaultInjector, FaultPlan,
                          READ_OK, RetryPolicy)
from repro.format.io import FileBackedDatabase, load_database, save_database
from repro.hardware.storage import StorageArray


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_attempts=5, backoff_seconds=1e-3,
                             multiplier=2.0, max_backoff_seconds=3e-3)
        assert policy.backoff(0) == pytest.approx(1e-3)
        assert policy.backoff(1) == pytest.approx(2e-3)
        assert policy.backoff(2) == pytest.approx(3e-3)  # 4e-3 capped
        assert policy.total_backoff(3) == pytest.approx(6e-3)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_seconds": -1e-3},
        {"max_backoff_seconds": -1.0},
        {"multiplier": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy.from_dict({"max_attempts": 3, "jitter": 0.1})

    def test_dict_round_trip(self):
        policy = RetryPolicy(max_attempts=7, backoff_seconds=2e-4)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.any_rates
        assert not plan.active

    @pytest.mark.parametrize("kwargs", [
        {"ssd_transient_rate": 1.0},
        {"ssd_corrupt_rate": -0.1},
        {"copy_error_rate": 2.0},
        {"stall_rate": 1.5},
        {"stall_seconds": -1.0},
        {"gpu_loss": {-1: 0.5}},
        {"ssd_loss": {0: -0.5}},
        {"host_corrupt_reads": {3: -1}},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)

    def test_json_string_keys_coerced_to_int(self):
        plan = FaultPlan(gpu_loss={"1": 0.5},
                         host_corrupt_reads={"3": 2})
        assert plan.gpu_loss == {1: 0.5}
        assert plan.host_corrupt_reads == {3: 2}
        assert plan.active and not plan.any_rates

    def test_retry_dict_coerced_to_policy(self):
        plan = FaultPlan(retry={"max_attempts": 6})
        assert isinstance(plan.retry, RetryPolicy)
        assert plan.retry.max_attempts == 6

    def test_with_seed(self):
        plan = FaultPlan(seed=1, stall_rate=0.1)
        other = plan.with_seed(9)
        assert other.seed == 9
        assert other.stall_rate == plan.stall_rate
        assert plan.seed == 1  # original untouched

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="gpu_looss"):
            FaultPlan.from_dict({"gpu_looss": {0: 1.0}})

    def test_from_json_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan(seed=3, ssd_transient_rate=0.05,
                         gpu_loss={1: 0.25}, retry={"max_attempts": 5})
        path.write_text(json.dumps(plan.to_dict()))
        loaded = FaultPlan.from_json_file(str(path))
        assert loaded == plan

    def test_from_json_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            FaultPlan.from_json_file(str(path))
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            FaultPlan.from_json_file(str(path))


RATED_PLAN = FaultPlan(seed=11, ssd_transient_rate=0.15,
                       ssd_corrupt_rate=0.1, copy_error_rate=0.1,
                       stall_rate=0.2, stall_seconds=5e-4)


class TestFaultInjector:
    def test_seed_override(self):
        injector = FaultInjector(RATED_PLAN, seed=99)
        assert injector.plan.seed == 99
        assert RATED_PLAN.seed == 11

    def test_draws_are_deterministic(self):
        pids = list(range(200))
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(RATED_PLAN)
            injector.begin_round(2)
            outcomes.append([injector.ssd_read_outcome(pid, 0)
                             for pid in pids])
        assert outcomes[0] == outcomes[1]
        assert any(o is not READ_OK for o in outcomes[0])

    def test_seed_changes_the_draws(self):
        pids = list(range(200))
        per_seed = []
        for seed in (0, 1):
            injector = FaultInjector(RATED_PLAN, seed=seed)
            injector.begin_round(0)
            per_seed.append([injector.ssd_read_outcome(pid, 0)
                             for pid in pids])
        assert per_seed[0] != per_seed[1]

    def test_probe_agrees_with_injection_points(self):
        """A clean probe guarantees every per-page draw is clean."""
        plan = FaultPlan(seed=7, ssd_transient_rate=0.01,
                         ssd_corrupt_rate=0.01, copy_error_rate=0.01,
                         stall_rate=0.02)
        pids = np.arange(8)
        assignments = [(int(pid) % 2,) for pid in pids]
        probe = FaultInjector(plan)
        verdicts = {}
        for r in range(40):
            probe.begin_round(r)
            verdicts[r] = probe.round_faulted(pids, assignments)
        assert any(verdicts.values()) and not all(verdicts.values())
        for r, faulted in verdicts.items():
            if faulted:
                continue
            check = FaultInjector(plan)
            check.begin_round(r)
            for pid, gpus in zip(pids, assignments):
                assert check.ssd_read_outcome(int(pid), 0) is READ_OK
                for g in gpus:
                    assert not check.copy_fault(g, int(pid), 0)
                    assert check.stall_seconds(g, int(pid)) == 0.0
            assert check.faults_injected == 0

    def test_empty_round_never_faults(self):
        injector = FaultInjector(RATED_PLAN)
        injector.begin_round(0)
        assert not injector.round_faulted(np.empty(0, dtype=np.int64), [])
        assert not FaultInjector(FaultPlan()).round_faulted([1, 2], [(0,),
                                                                     (0,)])

    def test_device_loss_schedules(self):
        plan = FaultPlan(gpu_loss={1: 0.5}, ssd_loss={0: 0.25})
        injector = FaultInjector(plan)
        assert injector.gpu_losses_by(0.4) == []
        assert injector.gpu_losses_by(0.5) == [1]
        assert injector.ssd_lost(0, 0.1) is None
        assert injector.ssd_lost(0, 0.3) == 0.25
        assert injector.ssd_lost(1, 9.0) is None

    def test_host_read_corruption_budget(self):
        injector = FaultInjector(FaultPlan(host_corrupt_reads={3: 2}))
        assert injector.host_read_corrupt(3)
        assert injector.host_read_corrupt(3)
        assert not injector.host_read_corrupt(3)
        assert not injector.host_read_corrupt(4)
        assert injector.host_corrupt_faults == 2

    def test_stats_snapshot(self):
        injector = FaultInjector(RATED_PLAN)
        injector.note_retry(1e-3)
        injector.note_fallback()
        injector.note_device_lost()
        stats = injector.stats()
        assert stats["seed"] == 11
        assert stats["retries"] == 1
        assert stats["backoff_seconds"] == pytest.approx(1e-3)
        assert stats["fallback_rounds"] == 1
        assert stats["devices_lost"] == 1


def _find_pid(plan, predicate, limit=2000):
    """First page ID whose attempt outcomes satisfy ``predicate``."""
    for pid in range(limit):
        probe = FaultInjector(plan)
        probe.begin_round(0)
        outcomes = [probe.ssd_read_outcome(pid, attempt)
                    for attempt in range(plan.retry.max_attempts
                                         if plan.retry else 4)]
        if predicate(outcomes):
            return pid
    raise AssertionError("no page matched within %d candidates" % limit)


class TestStorageFaults:
    def _array(self, machine):
        return StorageArray(machine.storages)

    def test_negative_fetch_size_rejected(self, machine):
        storage = self._array(machine)
        with pytest.raises(SimulationError, match="negative"):
            storage.fetch(0, -1, 0.0)

    def test_transient_fault_charges_read_plus_backoff(self, machine):
        plan = FaultPlan(seed=5, ssd_transient_rate=0.3,
                         retry={"max_attempts": 4})
        pid = _find_pid(plan, lambda o: o[0] is not READ_OK
                        and o[1] is READ_OK)
        storage = self._array(machine)
        device = storage.device_for_page(pid)
        num_bytes = 2048
        clean_duration = machine.storages[device].read_time(num_bytes)
        injector = FaultInjector(plan)
        injector.begin_round(0)
        storage.fault_injector = injector
        start, end = storage.fetch(pid, num_bytes, 0.0)
        backoff = plan.retry.backoff(0)
        # attempt 0 [0, d], backoff [d, d+b], attempt 1 [d+b, 2d+b]
        assert start == pytest.approx(clean_duration + backoff)
        assert end == pytest.approx(2 * clean_duration + backoff)
        assert storage.fetch_retries[device] == 1
        assert storage.faults_injected[device] == 1
        assert injector.retries == 1
        assert injector.backoff_seconds == pytest.approx(backoff)
        assert storage.pages_fetched == 1

    def test_retry_exhaustion_raises_typed_error(self, machine):
        plan = FaultPlan(seed=2, ssd_transient_rate=0.4,
                         retry={"max_attempts": 2})
        pid = _find_pid(plan,
                        lambda o: all(x is not READ_OK for x in o[:2]))
        storage = self._array(machine)
        injector = FaultInjector(plan)
        injector.begin_round(0)
        storage.fault_injector = injector
        with pytest.raises(RetryExhaustedError) as info:
            storage.fetch(pid, 2048, 0.0)
        error = info.value
        assert isinstance(error, FaultError)
        assert isinstance(error, GTSError)
        assert error.site == "ssd_read"
        assert error.attempts == 2
        assert error.page_id == pid

    def test_unrecoverable_faults_catchable_as_fault_error(self, machine):
        """Callers can catch the whole unrecoverable-fault family with
        one ``except FaultError`` clause."""
        plan = FaultPlan(seed=2, ssd_transient_rate=0.4,
                         retry={"max_attempts": 2})
        pid = _find_pid(plan,
                        lambda o: all(x is not READ_OK for x in o[:2]))
        storage = self._array(machine)
        injector = FaultInjector(plan)
        injector.begin_round(0)
        storage.fault_injector = injector
        with pytest.raises(FaultError):
            storage.fetch(pid, 2048, 0.0)

    def test_dead_ssd_raises_device_lost(self, machine):
        storage = self._array(machine)
        injector = FaultInjector(FaultPlan(ssd_loss={0: 0.5}))
        storage.fault_injector = injector
        # Device 0 still serves reads before its loss time...
        storage.fetch(0, 2048, 0.0)
        # ...and other devices survive it.
        storage.fetch(1, 2048, 1.0)
        with pytest.raises(DeviceLostError) as info:
            storage.fetch(0, 2048, 1.0)
        assert info.value.device == machine.storages[0].name
        assert info.value.lost_at == 0.5

    def test_reset_clears_fault_counters(self, machine):
        storage = self._array(machine)
        storage.fetch_retries[0] = 3
        storage.faults_injected[1] = 2
        storage.bytes_read = 99
        storage.reset()
        assert storage.fetch_retries == [0] * storage.num_devices
        assert storage.faults_injected == [0] * storage.num_devices
        assert storage.bytes_read == 0

    def test_clean_injected_fetch_matches_fault_free(self, machine):
        """With an injector installed but no fault drawn, the booking is
        bit-identical to the fault-free path."""
        plan = FaultPlan(seed=5, ssd_transient_rate=0.01,
                         ssd_corrupt_rate=0.01)
        pid = _find_pid(plan, lambda o: o[0] is READ_OK)
        plain = self._array(machine)
        faulted = self._array(machine)
        injector = FaultInjector(plan)
        injector.begin_round(0)
        faulted.fault_injector = injector
        assert faulted.fetch(pid, 2048, 0.125) == plain.fetch(
            pid, 2048, 0.125)


class TestChecksums:
    def _flip_byte(self, prefix, page_id, page_size, offset=17):
        path = prefix + ".pages"
        with open(path, "r+b") as handle:
            handle.seek(page_id * page_size + offset)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))

    def test_save_records_per_page_crc32(self, rmat_db, tmp_path):
        prefix = str(tmp_path / "db")
        meta_path, pages_path = save_database(rmat_db, prefix)
        with open(meta_path) as handle:
            metadata = json.load(handle)
        checksums = metadata["page_checksums"]
        assert len(checksums) == rmat_db.num_pages
        for page in rmat_db.pages[:8]:
            assert checksums[page.page_id] == zlib.crc32(page.to_bytes())

    def test_corruption_surfaces_as_integrity_error(self, rmat_db,
                                                    tmp_path):
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        victim = rmat_db.num_pages // 2
        self._flip_byte(prefix, victim, rmat_db.config.page_size)
        with pytest.raises(IntegrityError) as info:
            load_database(prefix)
        error = info.value
        assert error.page_id == victim
        assert "page %d" % victim in str(error)
        assert error.expected_crc != error.actual_crc
        assert error.expected_crc is not None

    def test_file_backed_corruption_detected(self, rmat_db, tmp_path):
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        self._flip_byte(prefix, 0, rmat_db.config.page_size)
        db = FileBackedDatabase(prefix, pool_pages=8)
        with pytest.raises(IntegrityError) as info:
            db.page(0)
        assert info.value.page_id == 0
        # Undamaged pages still load.
        db.page(1)

    def test_legacy_database_loads_with_a_warning(self, rmat_db,
                                                  tmp_path):
        prefix = str(tmp_path / "db")
        meta_path, _ = save_database(rmat_db, prefix)
        with open(meta_path) as handle:
            metadata = json.load(handle)
        del metadata["page_checksums"]
        with open(meta_path, "w") as handle:
            json.dump(metadata, handle)
        with pytest.warns(UserWarning, match="predates page checksums"):
            legacy = load_database(prefix)
        assert legacy.num_edges == rmat_db.num_edges
        with pytest.warns(UserWarning, match="predates page checksums"):
            lazy = FileBackedDatabase(prefix, pool_pages=8)
        lazy.page(0)
        # ... but corrupting host reads without checksums is refused:
        # silent corruption must never go undetected.
        injector = FaultInjector(FaultPlan(host_corrupt_reads={0: 1}))
        with pytest.raises(ConfigurationError, match="checksums"):
            lazy.attach_fault_injector(injector)

    def test_host_read_corruption_recovered_by_reread(self, rmat_db,
                                                      tmp_path):
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        db = FileBackedDatabase(prefix, pool_pages=8)
        injector = FaultInjector(FaultPlan(host_corrupt_reads={2: 1}))
        db.attach_fault_injector(injector)
        page = db.page(2)
        assert page.page_id == 2
        assert db.integrity_retries == 1
        assert injector.host_corrupt_faults == 1
        db.detach_fault_injector()
        assert db.fault_injector is None

    def test_persistent_host_corruption_raises(self, rmat_db, tmp_path):
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        db = FileBackedDatabase(prefix, pool_pages=8)
        # Budget beyond the retry allowance: every re-read corrupts too.
        injector = FaultInjector(
            FaultPlan(host_corrupt_reads={2: 50},
                      retry={"max_attempts": 3}))
        db.attach_fault_injector(injector)
        with pytest.raises(IntegrityError) as info:
            db.page(2)
        assert info.value.page_id == 2
        assert db.integrity_retries == 2  # attempts - 1 re-reads

    def test_save_fsyncs_files_and_directory(self, rmat_db, tmp_path,
                                             monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (synced.append(fd),
                                        real_fsync(fd))[1])
        save_database(rmat_db, str(tmp_path / "db"))
        # pages tmp + meta tmp + the parent directory after the renames.
        assert len(synced) >= 3
