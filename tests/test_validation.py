"""Tests for the DES invariant auditor."""

import pytest

from repro.core import BFSKernel, GTSEngine, PageRankKernel, SSSPKernel
from repro.errors import SimulationError
from repro.hardware.machine import MachineRuntime
from repro.hardware.specs import paper_workstation
from repro.hardware.validation import (
    check_gpu,
    check_resource,
    check_runtime,
)
from repro.hardware.clock import Resource
from repro.units import MB


class TestCheckResource:
    def test_valid_schedule_passes(self):
        resource = Resource("r", tracing=True)
        resource.book(0.0, 1.0)
        resource.book(5.0, 2.0)
        assert check_resource(resource) == 2

    def test_untraced_resource_rejected(self):
        with pytest.raises(SimulationError):
            check_resource(Resource("r"))

    def test_overlap_detected(self):
        resource = Resource("r", tracing=True)
        resource.events = [(0.0, 2.0), (1.0, 3.0)]
        resource.busy_time = 4.0
        with pytest.raises(SimulationError, match="overlap"):
            check_resource(resource)

    def test_negative_start_detected(self):
        resource = Resource("r", tracing=True)
        resource.events = [(-1.0, 1.0)]
        resource.busy_time = 2.0
        with pytest.raises(SimulationError, match="before time zero"):
            check_resource(resource)

    def test_accounting_mismatch_detected(self):
        resource = Resource("r", tracing=True)
        resource.events = [(0.0, 1.0)]
        resource.busy_time = 99.0
        with pytest.raises(SimulationError, match="busy_time"):
            check_resource(resource)

    def test_horizon_enforced(self):
        resource = Resource("r", tracing=True)
        resource.book(0.0, 10.0)
        with pytest.raises(SimulationError, match="after the clock"):
            check_resource(resource, horizon=5.0)


class TestCheckGPU:
    def test_real_bookings_pass(self):
        runtime = MachineRuntime(paper_workstation(), num_streams=4,
                                 page_bytes=1 * MB, tracing=True)
        gpu = runtime.gpus[0]
        for i in range(8):
            slot = gpu.streams.slots[i % 4]
            gpu.book_kernel(slot, 0.0, 1e8, 24.0)
        assert check_gpu(gpu) > 0


class TestEngineValidation:
    def test_engine_runs_validate_clean(self, rmat_db, machine):
        engine = GTSEngine(rmat_db, machine, validate_simulation=True)
        for kernel in (BFSKernel(0), PageRankKernel(iterations=3)):
            result = engine.run(kernel)
            assert result.elapsed_seconds > 0

    def test_validation_covers_storage_runs(self, rmat_db, machine):
        engine = GTSEngine(
            rmat_db, machine, validate_simulation=True,
            mm_buffer_bytes=4 * rmat_db.config.page_size)
        result = engine.run(PageRankKernel(iterations=2))
        assert result.storage_bytes_read > 0

    def test_validation_covers_both_strategies(self, weighted_db,
                                               machine):
        for strategy in ("performance", "scalability"):
            engine = GTSEngine(weighted_db, machine, strategy=strategy,
                               validate_simulation=True)
            engine.run(SSSPKernel(0))

    def test_untraced_runtime_rejected(self):
        runtime = MachineRuntime(paper_workstation(), page_bytes=1 * MB)
        with pytest.raises(SimulationError):
            check_runtime(runtime)
