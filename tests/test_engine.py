"""Engine behaviour tests: equivalences, memory policy, O.O.M., stats.

The key invariant: algorithm *results* are a pure function of the graph
and kernel — strategies, stream counts, GPU counts, caching, storage and
micro-level techniques only change the simulated *timing*.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    BFSKernel,
    GTSEngine,
    PageRankKernel,
    SSSPKernel,
)
from repro.errors import CapacityError, ConfigurationError, OutOfMemoryError
from repro.format import PageFormatConfig, build_database
from repro.graphgen import generate_rmat
from repro.hardware.specs import (
    GPUSpec,
    MachineSpec,
    PCIeSpec,
    SSD_SPEC,
    paper_workstation,
    scaled_workstation,
)
from repro.units import KB, MB


def _levels(db, machine, **kwargs):
    return GTSEngine(db, machine, **kwargs).run(
        BFSKernel(0)).values["level"]


def _ranks(db, machine, **kwargs):
    return GTSEngine(db, machine, **kwargs).run(
        PageRankKernel(iterations=5)).values["rank"]


class TestResultInvariance:
    def test_strategies_agree(self, rmat_db, machine):
        ranks_p = _ranks(rmat_db, machine, strategy="performance")
        ranks_s = _ranks(rmat_db, machine, strategy="scalability")
        assert np.allclose(ranks_p, ranks_s, atol=0)

    def test_stream_counts_agree(self, rmat_db, machine):
        base = _levels(rmat_db, machine, num_streams=1)
        for streams in (2, 8, 32):
            assert np.array_equal(
                base, _levels(rmat_db, machine, num_streams=streams))

    def test_gpu_counts_agree(self, rmat_db):
        results = [
            _ranks(rmat_db, scaled_workstation(num_gpus=n))
            for n in (1, 2, 4)
        ]
        assert np.allclose(results[0], results[1], atol=0)
        assert np.allclose(results[0], results[2], atol=0)

    def test_micro_techniques_agree(self, rmat_db, machine):
        base = _levels(rmat_db, machine, micro_technique="edge")
        for technique in ("vertex", "hybrid"):
            assert np.array_equal(
                base, _levels(rmat_db, machine,
                              micro_technique=technique))

    def test_caching_does_not_change_results(self, rmat_db, machine):
        assert np.array_equal(
            _levels(rmat_db, machine, enable_caching=True),
            _levels(rmat_db, machine, enable_caching=False))

    def test_storage_policy_does_not_change_results(self, rmat_db, machine):
        cold = _ranks(rmat_db, machine,
                      mm_buffer_bytes=2 * rmat_db.config.page_size)
        warm = _ranks(rmat_db, machine)
        assert np.allclose(cold, warm, atol=0)

    def test_runs_are_deterministic(self, rmat_db, machine):
        engine = GTSEngine(rmat_db, machine)
        first = engine.run(PageRankKernel(iterations=3))
        second = engine.run(PageRankKernel(iterations=3))
        assert np.allclose(first.values["rank"], second.values["rank"],
                           atol=0)
        assert first.elapsed_seconds == second.elapsed_seconds


class TestMemoryPolicy:
    def test_small_graph_preloads(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
        assert result.notes == "preloaded"
        assert result.storage_bytes_read == 0

    def test_capped_buffer_reads_storage(self, rmat_db, machine):
        result = GTSEngine(
            rmat_db, machine,
            mm_buffer_bytes=2 * rmat_db.config.page_size,
        ).run(PageRankKernel(iterations=2))
        assert result.notes == "cold storage"
        assert result.storage_bytes_read > 0

    def test_no_storage_and_too_big_raises(self, rmat_db):
        machine = MachineSpec(
            gpus=(GPUSpec(),), storages=(),
            main_memory=rmat_db.topology_bytes() // 2)
        with pytest.raises(CapacityError):
            GTSEngine(rmat_db, machine).run(BFSKernel(0))

    def test_no_storage_but_fits_works(self, rmat_db):
        machine = MachineSpec(
            gpus=(GPUSpec(),), storages=(),
            main_memory=4 * rmat_db.topology_bytes())
        result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
        assert result.num_rounds > 0

    def test_storage_capacity_checked(self, rmat_db):
        tiny_ssd = dataclasses.replace(
            SSD_SPEC, capacity=rmat_db.topology_bytes() // 4)
        machine = MachineSpec(
            gpus=(GPUSpec(),), storages=(tiny_ssd,),
            main_memory=rmat_db.topology_bytes() // 2)
        with pytest.raises(CapacityError):
            GTSEngine(rmat_db, machine).run(BFSKernel(0))

    def test_wa_too_big_for_strategy_p(self, rmat_db):
        """Strategy-P replicates WA: a tiny GPU cannot hold it (the
        paper's PageRank-beyond-RMAT30 O.O.M.)."""
        tiny_gpu = GPUSpec(device_memory=rmat_db.num_vertices * 4 // 2)
        machine = MachineSpec(
            gpus=(tiny_gpu, tiny_gpu), storages=(SSD_SPEC,),
            main_memory=1024 * MB)
        with pytest.raises(OutOfMemoryError):
            GTSEngine(rmat_db, machine, strategy="performance").run(
                PageRankKernel(iterations=1))

    def test_strategy_s_splits_wa_and_fits(self, rmat_db):
        """The same machine succeeds under Strategy-S (Section 4.2)."""
        wa_bytes = rmat_db.num_vertices * 4
        gpu = GPUSpec(device_memory=int(wa_bytes * 0.75)
                      + 64 * rmat_db.config.page_size)
        machine = MachineSpec(
            gpus=(gpu, gpu), storages=(SSD_SPEC,), main_memory=1024 * MB)
        result = GTSEngine(rmat_db, machine, strategy="scalability").run(
            PageRankKernel(iterations=1))
        assert result.strategy == "scalability"

    def test_caching_disabled_frees_device_memory(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine, enable_caching=False).run(
            BFSKernel(0))
        assert result.cache_hits == 0


class TestStatistics:
    def test_pages_streamed_counts_dispatches(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(
            PageRankKernel(iterations=2))
        # Strategy-P: each page dispatched once per iteration.
        assert result.pages_streamed == 2 * rmat_db.num_pages

    def test_edges_traversed_full_scan(self, rmat_graph, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(
            PageRankKernel(iterations=3))
        assert result.edges_traversed == 3 * rmat_graph.num_edges

    def test_round_stats_cover_run(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(
            PageRankKernel(iterations=4))
        assert len(result.rounds) == 4
        assert result.rounds[-1].end_time == pytest.approx(
            result.elapsed_seconds)
        for earlier, later in zip(result.rounds, result.rounds[1:]):
            assert later.start_time >= earlier.end_time - 1e-12

    def test_mteps_positive(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
        assert result.mteps() > 0

    def test_summary_mentions_engine_config(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine, num_streams=8).run(
            BFSKernel(0))
        summary = result.summary()
        assert "BFS" in summary
        assert "8 stream" in summary

    def test_wall_time_recorded(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
        assert result.wall_seconds > 0

    def test_transfer_and_kernel_busy_positive(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(
            PageRankKernel(iterations=1))
        assert result.transfer_busy_seconds > 0
        assert result.kernel_busy_seconds > 0
        assert result.kernel_stream_seconds > result.kernel_busy_seconds


class TestValidation:
    def test_stream_count_validated(self, rmat_db, machine):
        with pytest.raises(ConfigurationError):
            GTSEngine(rmat_db, machine, num_streams=0)

    def test_strategy_name_validated(self, rmat_db, machine):
        with pytest.raises(ConfigurationError):
            GTSEngine(rmat_db, machine, strategy="warp-speed")

    def test_micro_technique_validated(self, rmat_db, machine):
        with pytest.raises(ConfigurationError):
            GTSEngine(rmat_db, machine, micro_technique="psychic")
