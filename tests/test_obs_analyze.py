"""Tests for the trace analyzer (:mod:`repro.obs.analyze`).

Covers the PR 5 acceptance claims: the overlap-hiding ratio ablation
(multi-stream hides > 50% of transfer time, ``num_streams=1`` hides
~none), exact per-round attribution conservation, occupancy bounds, and
live-recorder vs written-trace report equivalence for both execution
paths, with and without faults.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GTSEngine
from repro.core.kernels.bfs import BFSKernel
from repro.core.kernels.pagerank import PageRankKernel
from repro.errors import ConfigurationError
from repro.obs import analyze_trace, write_chrome_trace
from repro.obs.events import TraceRecorder


@pytest.fixture(scope="module")
def multi_stream(rmat_db, machine):
    """Traced PageRank with 16 streams and no cache: copies every
    round, overlapped across streams."""
    engine = GTSEngine(rmat_db, machine, tracing=True, num_streams=16,
                       enable_caching=False)
    return engine.run(PageRankKernel(iterations=3))


@pytest.fixture(scope="module")
def single_stream(rmat_db, machine):
    """Same run with one stream: copy i+1 serializes behind kernel i."""
    engine = GTSEngine(rmat_db, machine, tracing=True, num_streams=1,
                       enable_caching=False)
    return engine.run(PageRankKernel(iterations=3))


class TestOverlapHiding:
    def test_multi_stream_hides_most_transfer(self, multi_stream):
        analysis = multi_stream.analyze()
        assert analysis.overlap_hiding_ratio > 0.5
        assert analysis.copy_seconds > 0

    def test_single_stream_hides_nothing(self, single_stream):
        analysis = single_stream.analyze()
        assert analysis.overlap_hiding_ratio < 0.05

    def test_ablation_orders_the_two_runs(self, multi_stream,
                                          single_stream):
        assert (multi_stream.analyze().overlap_hiding_ratio
                > single_stream.analyze().overlap_hiding_ratio)

    def test_per_gpu_stats(self, multi_stream):
        analysis = multi_stream.analyze()
        names = [stats.name for stats in analysis.overlap]
        assert "gpu0" in names and "gpu1" in names
        for stats in analysis.overlap:
            assert 0.0 <= stats.hiding_ratio <= 1.0
            assert stats.hidden_seconds <= stats.copy_seconds + 1e-12
            assert stats.exposed_seconds >= -1e-12
        assert analysis.gpu_overlap(0).name == "gpu0"
        assert analysis.gpu_overlap(99) is None

    def test_storage_overlap_reported_with_cold_buffer(self, rmat_db,
                                                       machine):
        engine = GTSEngine(
            rmat_db, machine, tracing=True, enable_caching=False,
            mm_buffer_bytes=rmat_db.config.page_size * 4)
        result = engine.run(BFSKernel(0))
        analysis = result.analyze()
        storage = next(s for s in analysis.overlap
                       if s.name == "storage")
        assert storage.copy_seconds > 0


class TestOccupancy:
    def test_busy_never_exceeds_span(self, multi_stream):
        analysis = multi_stream.analyze()
        assert analysis.lanes
        for lane in analysis.lanes:
            assert 0.0 <= lane.occupancy <= 1.0
            assert lane.busy_seconds <= lane.span_seconds + 1e-12
            assert lane.span_seconds == analysis.total_seconds

    def test_lane_accessor(self, multi_stream):
        analysis = multi_stream.analyze()
        lane = analysis.lane("gpu0", "copy engine")
        assert lane is not None
        assert lane.busy_seconds > 0
        assert analysis.lane("gpu9", "copy engine") is None


class TestAttribution:
    def test_rounds_match_result(self, multi_stream):
        profiles = multi_stream.round_profiles()
        assert len(profiles) == multi_stream.num_rounds
        assert [p.round_index for p in profiles] \
            == sorted(p.round_index for p in profiles)
        for profile in profiles:
            assert profile.execution == multi_stream.execution
            assert profile.end >= profile.start

    def test_attribution_conserves_booked_time(self, multi_stream):
        analysis = multi_stream.analyze()
        for category, total in analysis.category_seconds.items():
            attributed = sum(
                profile.category_seconds.get(category, 0.0)
                for profile in analysis.rounds)
            attributed += analysis.setup_seconds.get(category, 0.0)
            # Exact in integer nanoseconds; the float sum reintroduces
            # only ulp-level error.
            assert attributed == pytest.approx(total, abs=1e-9)

    def test_kernel_time_attributed_to_rounds(self, multi_stream):
        analysis = multi_stream.analyze()
        assert analysis.category_seconds["kernel"] > 0
        assert any(p.category_seconds.get("kernel", 0) > 0
                   for p in analysis.rounds)

    def test_cache_traffic_lands_in_rounds(self, rmat_db, machine):
        engine = GTSEngine(rmat_db, machine, tracing=True,
                           execution="paged")
        result = engine.run(PageRankKernel(iterations=3))
        profiles = result.round_profiles()
        assert sum(p.cache_hits for p in profiles) == result.cache_hits
        assert sum(p.cache_misses for p in profiles) \
            == result.cache_misses

    def test_critical_path(self, multi_stream):
        analysis = multi_stream.analyze()
        assert len(analysis.critical_path) == len(analysis.rounds)
        assert analysis.critical_path_seconds > 0
        for segment in analysis.critical_path:
            assert 0.0 <= segment.share <= 1.0
            # The dominant lane is a real lane of the trace.
            assert analysis.lane(segment.process,
                                 segment.thread) is not None


class TestEquivalence:
    """A written trace analyzes identically to the live recorder."""

    def _roundtrip(self, result, tmp_path, name):
        live = analyze_trace(result.trace).to_dict()
        path = str(tmp_path / name)
        write_chrome_trace(result.trace, path)
        reloaded = analyze_trace(path).to_dict()
        assert live == reloaded

    def test_paged(self, rmat_db, machine, tmp_path):
        engine = GTSEngine(rmat_db, machine, tracing=True,
                           execution="paged")
        self._roundtrip(engine.run(PageRankKernel(iterations=2)),
                        tmp_path, "paged.json")

    def test_batched(self, rmat_db, machine, tmp_path):
        engine = GTSEngine(rmat_db, machine, tracing=True,
                           execution="batched")
        self._roundtrip(engine.run(PageRankKernel(iterations=2)),
                        tmp_path, "batched.json")

    def test_with_faults(self, rmat_db, machine, tmp_path):
        from repro.faults import FaultPlan
        # A cold MM buffer forces real SSD fetches for the transient
        # faults to hit.
        plan = FaultPlan(ssd_transient_rate=0.05, seed=11)
        engine = GTSEngine(rmat_db, machine, tracing=True, faults=plan,
                           enable_caching=False,
                           mm_buffer_bytes=rmat_db.config.page_size * 4)
        result = engine.run(BFSKernel(0))
        assert result.fault_stats["faults_injected"] > 0
        self._roundtrip(result, tmp_path, "faulted.json")

    def test_dict_source_too(self, multi_stream):
        from repro.obs import chrome_trace
        payload = chrome_trace(multi_stream.trace)
        assert analyze_trace(payload).to_dict() \
            == multi_stream.analyze().to_dict()


class TestDeterministicArtifacts:
    def test_identical_runs_write_identical_bytes(self, rmat_db,
                                                  machine, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            engine = GTSEngine(rmat_db, machine, tracing=True,
                               num_streams=4)
            result = engine.run(PageRankKernel(iterations=2))
            path = str(tmp_path / name)
            write_chrome_trace(result.trace, path)
            paths.append(path)
        with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
            assert a.read() == b.read()


class TestInputs:
    def test_none_raises(self):
        with pytest.raises(ConfigurationError):
            analyze_trace(None)

    def test_untraced_run_raises(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
        with pytest.raises(ConfigurationError):
            result.analyze()

    def test_wrong_type_raises(self):
        with pytest.raises(ConfigurationError):
            analyze_trace(42)

    def test_empty_recorder_analyzes_to_zero(self):
        analysis = analyze_trace(TraceRecorder())
        assert analysis.total_seconds == 0.0
        assert analysis.overlap_hiding_ratio == 0.0
        assert analysis.rounds == []
        assert analysis.lanes == []

    def test_result_caches_analysis(self, multi_stream):
        assert multi_stream.analyze() is multi_stream.analyze()

    def test_json_ready(self, multi_stream):
        json.dumps(multi_stream.analyze().to_dict())
        assert "overlap-hiding" in multi_stream.analyze().summary()


# -- property tests over synthetic event streams ------------------------

_LANES = [("gpu0", "stream[0]"), ("gpu0", "copy engine"),
          ("gpu1", "stream[0]"), ("storage", "nvme0")]
_NAMES = ["kernel", "h2d_copy", "ssd_fetch", "wa_sync"]


@st.composite
def synthetic_recorders(draw):
    """A random event stream plus disjoint round windows over it."""
    recorder = TraceRecorder()
    for _ in range(draw(st.integers(1, 30))):
        process, thread = draw(st.sampled_from(_LANES))
        name = draw(st.sampled_from(_NAMES))
        start = draw(st.floats(0, 100, allow_nan=False))
        duration = draw(st.floats(0, 20, allow_nan=False))
        recorder.interval(name, process, thread, start, start + duration)
    cuts = sorted(draw(st.lists(st.floats(0, 130, allow_nan=False),
                                min_size=2, max_size=6, unique=True)))
    for index in range(len(cuts) - 1):
        recorder.interval("round", "engine", "rounds", cuts[index],
                          cuts[index + 1], round=index,
                          description="synthetic")
    return recorder


@settings(max_examples=60, deadline=None)
@given(recorder=synthetic_recorders())
def test_property_occupancy_bounded(recorder):
    analysis = analyze_trace(recorder)
    for lane in analysis.lanes:
        assert 0.0 <= lane.occupancy <= 1.0
        assert lane.busy_seconds <= analysis.total_seconds + 1e-12


@settings(max_examples=60, deadline=None)
@given(recorder=synthetic_recorders())
def test_property_attribution_conserved(recorder):
    """Round windows are disjoint, so per-round attribution plus the
    setup remainder reconstructs the whole-run booked time exactly."""
    analysis = analyze_trace(recorder)
    for category, total in analysis.category_seconds.items():
        attributed = sum(p.category_seconds.get(category, 0.0)
                         for p in analysis.rounds)
        attributed += analysis.setup_seconds.get(category, 0.0)
        assert attributed == pytest.approx(total, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(recorder=synthetic_recorders())
def test_property_hiding_ratio_bounded(recorder):
    analysis = analyze_trace(recorder)
    assert 0.0 <= analysis.overlap_hiding_ratio <= 1.0
    assert analysis.hidden_seconds <= analysis.copy_seconds + 1e-12
