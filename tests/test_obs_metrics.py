"""Tests for the metrics registry and run-metric collection."""

import json

import pytest

from repro.core import BFSKernel, GTSEngine
from repro.errors import ConfigurationError
from repro.obs import (
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
)


@pytest.fixture(scope="module")
def bfs_result(rmat_db, machine):
    return GTSEngine(rmat_db, machine).run(BFSKernel(0))


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1.5)
        gauge.set(0.25)
        assert gauge.snapshot() == 0.25

    def test_histogram_snapshot(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["mean"] == 2.5
        assert snap["p50"] == pytest.approx(2.5)

    def test_empty_histogram_snapshot(self):
        # Same keys as a populated snapshot, stats explicitly null — so
        # downstream flattening/JSON consumers see a stable shape.
        assert Histogram("h").snapshot() == {
            "count": 0, "sum": 0.0, "min": None, "max": None,
            "mean": None, "p50": None, "p95": None, "p99": None,
        }

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")


class TestSerialization:
    def test_as_dict_shape(self):
        registry = MetricsRegistry(meta={"algorithm": "BFS"})
        registry.counter("hits").inc(3)
        payload = registry.as_dict()
        assert payload["meta"] == {"algorithm": "BFS"}
        assert payload["metrics"]["hits"] == {"kind": "counter",
                                              "value": 3}

    def test_to_json_writes_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        path = str(tmp_path / "sub" / "metrics.json")
        text = registry.to_json(path)
        assert json.loads(text)["metrics"]["g"]["value"] == 1.0
        assert json.load(open(path)) == json.loads(text)

    def test_append_jsonl_accumulates(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        for run in range(3):
            registry = MetricsRegistry(meta={"run": run})
            registry.counter("c").inc(run)
            registry.append_jsonl(path)
        lines = open(path).read().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[2])["metrics"]["c"]["value"] == 2

    def test_append_jsonl_stamps_schema_and_extra_meta(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        registry = MetricsRegistry(meta={"run": 1})
        registry.counter("c").inc()
        registry.append_jsonl(path, extra_meta={"experiment": "fig9"})
        record = json.loads(open(path).read())
        assert record["schema"] == MetricsRegistry.JSONL_SCHEMA_VERSION
        assert record["meta"] == {"run": 1, "experiment": "fig9"}
        # The merge happens at write time only.
        assert registry.meta == {"run": 1}


class TestCollectRunMetrics:
    def test_counters_match_result(self, bfs_result):
        registry = collect_run_metrics(bfs_result)
        payload = registry.as_dict()["metrics"]
        assert payload["run.bytes_streamed"]["value"] \
            == bfs_result.bytes_streamed
        assert payload["run.pages_streamed"]["value"] \
            == bfs_result.pages_streamed
        assert payload["cache.hits"]["value"] == bfs_result.cache_hits
        assert payload["cache.hit_rate"]["value"] \
            == pytest.approx(bfs_result.cache_hit_rate)
        assert payload["mm_buffer.hit_rate"]["value"] \
            == pytest.approx(bfs_result.mm_buffer_hit_rate)

    def test_round_latency_histogram(self, bfs_result):
        registry = collect_run_metrics(bfs_result)
        snap = registry["round.latency_seconds"].snapshot()
        assert snap["count"] == bfs_result.num_rounds
        assert snap["sum"] == pytest.approx(
            sum(r.elapsed for r in bfs_result.rounds))

    def test_meta_identifies_the_run(self, bfs_result):
        registry = collect_run_metrics(bfs_result)
        assert registry.meta["algorithm"] == "BFS"
        assert registry.meta["strategy"] == bfs_result.strategy
        assert registry.meta["cache_policy"] == bfs_result.cache_policy
        assert registry.meta["execution"] == bfs_result.execution
        assert registry.meta["execution"] in ("paged", "batched")

    def test_registry_round_trips_through_json(self, bfs_result):
        registry = collect_run_metrics(bfs_result)
        decoded = json.loads(registry.to_json())
        assert decoded["metrics"]["run.num_rounds"]["value"] \
            == bfs_result.num_rounds
