"""Discrete-event timing properties: the shapes behind the paper's
figures, asserted as inequalities on simulated elapsed time."""

import numpy as np
import pytest

from repro.core import BFSKernel, GTSEngine, PageRankKernel
from repro.core.cost_model import inputs_from_run, pagerank_like_cost
from repro.format import build_database
from repro.graphgen import generate_rmat
from repro.hardware.specs import HDD_SPEC, SSD_SPEC, scaled_workstation


def _elapsed(db, machine, kernel, **kwargs):
    return GTSEngine(db, machine, **kwargs).run(kernel).elapsed_seconds


class TestStreamScaling:
    """Figure 10: more streams never hurt, and help a lot early."""

    def test_monotone_nonincreasing(self, rmat_db, machine):
        times = [
            _elapsed(rmat_db, machine, PageRankKernel(iterations=3),
                     num_streams=k)
            for k in (1, 2, 4, 8, 16, 32)
        ]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier * 1.001

    def test_first_doubling_near_halves(self, rmat_db, machine):
        one = _elapsed(rmat_db, machine, PageRankKernel(iterations=3),
                       num_streams=1)
        two = _elapsed(rmat_db, machine, PageRankKernel(iterations=3),
                       num_streams=2)
        assert two < 0.75 * one

    def test_bfs_also_improves(self, rmat_db, machine):
        one = _elapsed(rmat_db, machine, BFSKernel(0), num_streams=1)
        many = _elapsed(rmat_db, machine, BFSKernel(0), num_streams=32)
        assert many < one

    def test_more_than_32_streams_no_effect(self, rmat_db, machine):
        """CUDA caps concurrent kernels at 32 (Section 3.2)."""
        at_32 = _elapsed(rmat_db, machine, PageRankKernel(iterations=2),
                         num_streams=32)
        at_64 = _elapsed(rmat_db, machine, PageRankKernel(iterations=2),
                         num_streams=64)
        assert at_64 == pytest.approx(at_32)


class TestStorageOrdering:
    """Figure 9: in-memory < 2 SSDs < 1 SSD << 2 HDDs."""

    @pytest.fixture(scope="class")
    def cold_buffer(self, rmat_db):
        return int(0.2 * rmat_db.topology_bytes())

    def test_ordering(self, rmat_db, cold_buffer):
        kernel = PageRankKernel(iterations=3)
        in_memory = _elapsed(
            rmat_db, scaled_workstation(num_ssds=2), kernel)
        two_ssds = _elapsed(
            rmat_db, scaled_workstation(num_ssds=2), kernel,
            mm_buffer_bytes=cold_buffer)
        one_ssd = _elapsed(
            rmat_db, scaled_workstation(num_ssds=1), kernel,
            mm_buffer_bytes=cold_buffer)
        two_hdds = _elapsed(
            rmat_db, scaled_workstation(num_ssds=2, storage_spec=HDD_SPEC),
            kernel, mm_buffer_bytes=cold_buffer)
        assert in_memory < two_ssds < one_ssd < two_hdds

    def test_hdd_is_io_bound(self, rmat_db, cold_buffer):
        """HDD elapsed time approximates bytes / aggregate bandwidth."""
        machine = scaled_workstation(num_ssds=2, storage_spec=HDD_SPEC)
        result = GTSEngine(rmat_db, machine,
                           mm_buffer_bytes=cold_buffer).run(
            PageRankKernel(iterations=3))
        io_floor = result.storage_bytes_read / (2 * HDD_SPEC.read_bandwidth)
        assert result.elapsed_seconds >= io_floor
        assert result.elapsed_seconds < 3 * io_floor


class TestStrategyScaling:
    """Section 4: Strategy-P speeds up with GPUs; Strategy-S does not."""

    def test_strategy_p_speedup(self, rmat_db):
        kernel = PageRankKernel(iterations=3)
        one = _elapsed(rmat_db, scaled_workstation(num_gpus=1), kernel,
                       strategy="performance")
        two = _elapsed(rmat_db, scaled_workstation(num_gpus=2), kernel,
                       strategy="performance")
        four = _elapsed(rmat_db, scaled_workstation(num_gpus=4), kernel,
                        strategy="performance")
        assert two < 0.7 * one
        assert four < 0.7 * two

    def test_strategy_s_flat(self, rmat_db):
        kernel = PageRankKernel(iterations=3)
        times = [
            _elapsed(rmat_db, scaled_workstation(num_gpus=n), kernel,
                     strategy="scalability")
            for n in (1, 2, 4)
        ]
        assert max(times) < 1.2 * min(times)

    def test_strategy_p_not_slower_than_s(self, rmat_db, machine):
        kernel = PageRankKernel(iterations=3)
        p = _elapsed(rmat_db, machine, kernel, strategy="performance")
        s = _elapsed(rmat_db, machine, kernel, strategy="scalability")
        assert p <= s * 1.001


class TestCachingEffect:
    def test_cache_reduces_elapsed_time(self, rmat_db, machine):
        kernel_on = BFSKernel(0)
        kernel_off = BFSKernel(0)
        on = _elapsed(rmat_db, machine, kernel_on, enable_caching=True)
        off = _elapsed(rmat_db, machine, kernel_off, enable_caching=False)
        assert on <= off

    def test_bigger_cache_never_slower(self, rmat_db, machine):
        page = rmat_db.config.page_size
        times = [
            _elapsed(rmat_db, machine, BFSKernel(0), cache_bytes=pages * page)
            for pages in (0, 16, 64, 256)
        ]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier * 1.001

    def test_second_iteration_hits_cache(self, machine, small_config):
        """A graph small enough to cache entirely: iteration 2+ of
        PageRank streams nothing."""
        graph = generate_rmat(8, edge_factor=8, seed=1)
        db = build_database(graph, small_config)
        result = GTSEngine(db, machine).run(PageRankKernel(iterations=4))
        # 2 GPUs under Strategy-P: every page is a miss exactly once.
        assert result.cache_misses == db.num_pages
        assert result.cache_hits == 3 * db.num_pages


class TestCostModelAgreement:
    def test_eq1_tracks_des_for_streaming_pagerank(self, rmat_db, machine):
        """With caching off, Eq. 1's transfer-dominated estimate should
        land within 3x of the DES (same bandwidths, no pipeline model)."""
        result = GTSEngine(rmat_db, machine, enable_caching=False,
                           num_streams=32).run(PageRankKernel(iterations=1))
        inputs = inputs_from_run(rmat_db, machine, PageRankKernel())
        estimate = pagerank_like_cost(inputs, iterations=1)
        assert estimate / 3 < result.elapsed_seconds < estimate * 3

    def test_eq1_scales_with_iterations(self, rmat_db, machine):
        inputs = inputs_from_run(rmat_db, machine, PageRankKernel())
        assert pagerank_like_cost(inputs, iterations=10) == pytest.approx(
            10 * pagerank_like_cost(inputs, iterations=1))
