"""Property test: batched and paged execution are indistinguishable.

The vectorized fast path is only allowed to change *wall-clock*, never
behaviour: for any graph, kernel, strategy, and page-serving backend the
two paths must produce bit-identical algorithm output, simulated time,
per-round statistics, and cache counters.  Hypothesis drives random
graphs and configurations through both paths, including a file-backed
database whose page pool is small enough to force constant eviction.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    BFSKernel,
    GTSEngine,
    PageRankKernel,
    SSSPKernel,
    WCCKernel,
)
from repro.format import PageFormatConfig, build_database
from repro.format.io import FileBackedDatabase, save_database
from repro.graphgen import Graph
from repro.hardware.specs import scaled_workstation
from repro.units import KB

KERNELS = {
    "pagerank": lambda start: PageRankKernel(iterations=4),
    "bfs": lambda start: BFSKernel(start_vertex=start),
    "sssp": lambda start: SSSPKernel(start_vertex=start),
    "wcc": lambda start: WCCKernel(),
}


def _random_graph(data, weighted):
    num_vertices = data.draw(st.integers(2, 120))
    num_edges = data.draw(st.integers(0, 400))
    seed = data.draw(st.integers(0, 10 ** 6))
    rng = np.random.default_rng(seed)
    graph = Graph.from_edges(
        num_vertices,
        rng.integers(0, num_vertices, size=num_edges),
        rng.integers(0, num_vertices, size=num_edges))
    if weighted:
        graph = graph.with_random_weights(seed=seed)
    return graph


def _run_pair(db, machine, strategy, kernel_name, start, caching):
    results = []
    for execution in ("paged", "batched"):
        engine = GTSEngine(db, machine, strategy=strategy,
                           enable_caching=caching, execution=execution)
        results.append(engine.run(KERNELS[kernel_name](start)))
    return results


def _assert_identical(paged, batched):
    assert paged.execution == "paged"
    assert batched.execution == "batched"
    assert batched.elapsed_seconds == paged.elapsed_seconds
    assert batched.num_rounds == paged.num_rounds
    for key in paged.values:
        np.testing.assert_array_equal(batched.values[key],
                                      paged.values[key])
    paged_dict = paged.to_dict()
    batched_dict = batched.to_dict()
    for key in ("cache_hits", "cache_misses", "cache_hit_rate",
                "mm_buffer_hits", "mm_buffer_misses",
                "storage_bytes_read", "storage_pages_fetched",
                "pages_streamed", "bytes_to_gpu",
                "transfer_busy_seconds", "kernel_busy_seconds",
                "kernel_stream_seconds", "edges_traversed"):
        assert batched_dict.get(key) == paged_dict.get(key), key
    for round_paged, round_batched in zip(paged.rounds, batched.rounds):
        assert (dataclasses.asdict(round_batched)
                == dataclasses.asdict(round_paged))


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_batched_matches_paged_on_random_graphs(data):
    kernel_name = data.draw(st.sampled_from(sorted(KERNELS)))
    graph = _random_graph(data, weighted=kernel_name == "sssp")
    if kernel_name == "wcc":
        graph = graph.symmetrised()
    db = build_database(graph, PageFormatConfig(2, 2, 1 * KB))
    machine = scaled_workstation(
        num_gpus=data.draw(st.sampled_from([1, 2, 3])),
        num_ssds=data.draw(st.sampled_from([1, 2])))
    strategy = data.draw(st.sampled_from(["performance", "scalability"]))
    caching = data.draw(st.booleans())
    start = data.draw(st.integers(0, graph.num_vertices - 1))
    paged, batched = _run_pair(db, machine, strategy, kernel_name, start,
                               caching)
    _assert_identical(paged, batched)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_batched_matches_paged_under_pool_eviction(data, tmp_path_factory):
    """A file-backed page pool too small for the database must not
    perturb either path: the plan is built from one pass over the pages
    and the paged path re-reads through the pool, yet both must agree
    with each other bit for bit."""
    kernel_name = data.draw(st.sampled_from(sorted(KERNELS)))
    graph = _random_graph(data, weighted=kernel_name == "sssp")
    if kernel_name == "wcc":
        graph = graph.symmetrised()
    db = build_database(graph, PageFormatConfig(2, 2, 1 * KB))
    prefix = str(tmp_path_factory.mktemp("pooled") / "db")
    save_database(db, prefix)
    pool_pages = max(1, db.num_pages // 4)
    lazy = FileBackedDatabase(prefix, pool_pages=pool_pages)
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    start = data.draw(st.integers(0, graph.num_vertices - 1))
    paged, batched = _run_pair(lazy, machine, "performance", kernel_name,
                               start, True)
    _assert_identical(paged, batched)
    assert lazy.resident_pages() <= pool_pages


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_backend_and_store_mode_never_perturb_results(data,
                                                      tmp_path_factory):
    """The full host-side configuration matrix — (execution, backend,
    store mode) — is indistinguishable from the eager serial baseline:
    host options may only move host counters, never simulated time,
    values, or the compared statistics."""
    kernel_name = data.draw(st.sampled_from(sorted(KERNELS)))
    graph = _random_graph(data, weighted=kernel_name == "sssp")
    if kernel_name == "wcc":
        graph = graph.symmetrised()
    db = build_database(graph, PageFormatConfig(2, 2, 1 * KB))
    prefix = str(tmp_path_factory.mktemp("matrix") / "db")
    save_database(db, prefix)
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    start = data.draw(st.integers(0, graph.num_vertices - 1))
    baseline = GTSEngine(db, machine, execution="paged").run(
        KERNELS[kernel_name](start))
    pool_pages = max(1, db.num_pages // 2)
    for execution in ("paged", "batched"):
        for backend in ("serial", "process"):
            for store_mode in ("copy", "mmap"):
                lazy = FileBackedDatabase(prefix, pool_pages=pool_pages,
                                          mode=store_mode)
                engine = GTSEngine(lazy, machine, execution=execution,
                                   backend=backend, backend_workers=2)
                try:
                    result = engine.run(KERNELS[kernel_name](start))
                finally:
                    engine.close()
                    lazy.close()
                combo = (execution, backend, store_mode)
                assert result.elapsed_seconds \
                    == baseline.elapsed_seconds, combo
                assert result.num_rounds == baseline.num_rounds, combo
                for key in baseline.values:
                    np.testing.assert_array_equal(
                        result.values[key], baseline.values[key],
                        err_msg=str(combo))
                result_dict = result.to_dict()
                baseline_dict = baseline.to_dict()
                for key in ("cache_hits", "cache_misses",
                            "mm_buffer_hits", "mm_buffer_misses",
                            "storage_bytes_read", "storage_pages_fetched",
                            "pages_streamed", "bytes_to_gpu",
                            "transfer_busy_seconds", "kernel_busy_seconds",
                            "kernel_stream_seconds", "edges_traversed"):
                    assert result_dict.get(key) \
                        == baseline_dict.get(key), (combo, key)
                for base_round, this_round in zip(baseline.rounds,
                                                  result.rounds):
                    assert (dataclasses.asdict(this_round)
                            == dataclasses.asdict(base_round)), combo


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_io_merge_changes_plan_but_not_results(data, tmp_path_factory):
    """``io_merge`` is the one opt-in host knob allowed to move the
    simulated I/O plan; the algorithm output must stay bit-identical,
    and under merge the (execution, backend) matrix must still agree
    with itself."""
    kernel_name = data.draw(st.sampled_from(["pagerank", "bfs"]))
    graph = _random_graph(data, weighted=False)
    db = build_database(graph, PageFormatConfig(2, 2, 1 * KB))
    prefix = str(tmp_path_factory.mktemp("merge") / "db")
    save_database(db, prefix)
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    start = data.draw(st.integers(0, graph.num_vertices - 1))
    lazy = FileBackedDatabase(prefix, pool_pages=max(1, db.num_pages))
    plain = GTSEngine(lazy, machine).run(KERNELS[kernel_name](start))
    merged = {}
    for execution in ("paged", "batched"):
        for backend in ("serial", "process"):
            engine = GTSEngine(lazy, machine, execution=execution,
                               backend=backend, backend_workers=2,
                               io_merge=True)
            try:
                merged[(execution, backend)] = engine.run(
                    KERNELS[kernel_name](start))
            finally:
                engine.close()
    reference = merged[("paged", "serial")]
    for key in plain.values:
        np.testing.assert_array_equal(reference.values[key],
                                      plain.values[key])
    for combo, result in merged.items():
        assert result.elapsed_seconds \
            == reference.elapsed_seconds, combo
        for key in reference.values:
            np.testing.assert_array_equal(result.values[key],
                                          reference.values[key],
                                          err_msg=str(combo))


def test_all_four_kernels_support_batch():
    for name, factory in KERNELS.items():
        assert factory(0).supports_batch(), name


def test_traced_runs_agree_with_untraced():
    """Tracing disables the inlined booking loops; the simulated clock
    must not notice."""
    graph = Graph.from_edges(
        50,
        np.random.default_rng(5).integers(0, 50, size=300),
        np.random.default_rng(6).integers(0, 50, size=300))
    db = build_database(graph, PageFormatConfig(2, 2, 1 * KB))
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    results = {}
    for execution in ("paged", "batched"):
        for tracing in (False, True):
            engine = GTSEngine(db, machine, tracing=tracing,
                               execution=execution)
            results[(execution, tracing)] = engine.run(
                PageRankKernel(iterations=3))
    baseline = results[("paged", False)]
    for key, result in results.items():
        assert result.elapsed_seconds == baseline.elapsed_seconds, key
        np.testing.assert_array_equal(result.values["rank"],
                                      baseline.values["rank"])


