"""Unit tests for the vectorized execution plan and its satellites.

Covers the :mod:`repro.core.plan` arrays (global scatter index, batch
gathering, the topology-version plan cache), the database-level
scatter-index cache, the steady-state cache shortcut, the vectorized
large-page-run index, and the ``execution`` knob's error handling on
engine, CLI, and result-reporting surfaces.
"""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import DegreeKernel, GTSEngine, PageRankKernel
from repro.core.cache import PageCache
from repro.core.plan import (
    PagePlan,
    RoundPlanCache,
    segment_sum,
    take_ranges,
)
from repro.errors import ConfigurationError
from repro.format import PageFormatConfig, build_database
from repro.format.io import FileBackedDatabase, save_database
from repro.format.page import sorted_scatter_index
from repro.graphgen import generate_rmat
from repro.graphgen.io import write_edge_list
from repro.hardware.specs import scaled_workstation


@pytest.fixture
def db():
    graph = generate_rmat(8, edge_factor=8, seed=11)
    return build_database(graph, PageFormatConfig(2, 2, 1024))


@pytest.fixture
def machine():
    return scaled_workstation(num_gpus=2, num_ssds=2)


class TestPlanArrays:
    def test_global_scatter_matches_per_page(self, db):
        """The combined-key argsort must equal the concatenation of the
        per-page stable scatter argsorts, bit for bit."""
        plan = PagePlan(db)
        for pid in range(db.num_pages):
            page = db.page(pid)
            order, targets, starts = sorted_scatter_index(page.adj_vids)
            lo, hi = plan.edge_indptr[pid], plan.edge_indptr[pid + 1]
            slo, shi = plan.seg_indptr[pid], plan.seg_indptr[pid + 1]
            np.testing.assert_array_equal(plan.order_local[lo:hi], order)
            np.testing.assert_array_equal(
                plan.seg_starts_local[slo:shi], starts)
            np.testing.assert_array_equal(
                plan.seg_targets[slo:shi], targets)

    def test_overflow_fallback_matches_combined_key(self, db):
        """The per-page fallback (combined key would overflow int64)
        builds the same arrays as the vectorized path."""
        fast = PagePlan(db)
        slow = PagePlan.__new__(PagePlan)
        slow.__dict__.update(fast.__dict__)

        class HugeV:
            num_vertices = 1 << 60
            num_pages = db.num_pages

        slow.num_pages = db.num_pages
        slow._build_scatter(HugeV)
        for name in ("order_local", "seg_starts_local", "seg_targets",
                     "seg_pids", "seg_counts", "seg_indptr"):
            np.testing.assert_array_equal(getattr(slow, name),
                                          getattr(fast, name), err_msg=name)

    def test_full_batch_equals_explicit_gather(self, db):
        """The zero-copy identity batch must agree with a forced gather
        of every page."""
        plan = PagePlan(db)
        identity = plan.full_batch()
        gathered = plan._gather(identity.pids)
        for name in ("pids", "rec_indptr", "degrees", "rec_vids",
                     "rec_divisor", "edge_indptr", "edge_rec", "adj_vids",
                     "adj_pids", "scatter_order", "seg_starts",
                     "seg_targets", "seg_pids", "seg_indptr"):
            np.testing.assert_array_equal(getattr(identity, name),
                                          getattr(gathered, name),
                                          err_msg=name)

    def test_round_batch_subset(self, db):
        plan = PagePlan(db)
        pids = np.asarray([0, 2, 3], dtype=np.int64)
        batch = plan.round_batch(pids)
        assert batch.num_pages == 3
        offset = 0
        for k, pid in enumerate(pids):
            page = db.page(int(pid))
            lo, hi = batch.rec_indptr[k], batch.rec_indptr[k + 1]
            np.testing.assert_array_equal(batch.rec_vids[lo:hi],
                                          page.vids())
            np.testing.assert_array_equal(batch.degrees[lo:hi],
                                          page.degrees())
            elo, ehi = batch.edge_indptr[k], batch.edge_indptr[k + 1]
            np.testing.assert_array_equal(batch.adj_vids[elo:ehi],
                                          page.adj_vids)
            offset += page.num_records
        assert batch.num_records == offset

    def test_take_ranges_and_segment_sum(self):
        np.testing.assert_array_equal(
            take_ranges([5, 0], [3, 2]), [5, 6, 7, 0, 1])
        assert len(take_ranges([], [])) == 0
        np.testing.assert_array_equal(
            segment_sum(np.asarray([1, 2, 3, 4]),
                        np.asarray([0, 2, 2, 4])),
            [3, 0, 7])

    def test_copy_bytes_cached_per_ra_width(self, db):
        plan = PagePlan(db)
        first = plan.copy_bytes(4)
        assert plan.copy_bytes(4) is first
        expected = np.asarray([db.page_bytes(pid) +
                               db.ra_subvector_bytes(pid, 4)
                               for pid in range(db.num_pages)])
        np.testing.assert_array_equal(first, expected)


class TestRoundPlanCache:
    def test_rebuilds_on_topology_version_bump(self, db):
        cache = RoundPlanCache()
        first = cache.get(db)
        assert cache.get(db) is first
        assert (cache.builds, cache.hits) == (1, 1)
        db.topology_version += 1
        second = cache.get(db)
        assert second is not first
        assert second.topology_version == db.topology_version
        assert cache.builds == 2

    def test_invalidate_forces_rebuild(self, db):
        cache = RoundPlanCache()
        first = cache.get(db)
        cache.invalidate()
        assert cache.get(db) is not first


class TestScatterIndexCache:
    def test_survives_pool_eviction(self, db, tmp_path):
        """The DB-level scatter cache is keyed by page ID, not by the
        served page object, so pool evictions must not cost recomputes."""
        prefix = str(tmp_path / "db")
        save_database(db, prefix)
        lazy = FileBackedDatabase(prefix, pool_pages=2)
        for _ in range(3):
            for pid in range(lazy.num_pages):
                lazy.scatter_index(lazy.page(pid))
        assert lazy.scatter_misses == lazy.num_pages
        assert lazy.scatter_hits == 2 * lazy.num_pages
        assert lazy.resident_pages() <= 2

    def test_invalidated_by_topology_version(self, db):
        page = db.page(0)
        db.scatter_index(page)
        hits = db.scatter_hits
        db.topology_version += 1
        db.scatter_index(db.page(0))
        assert db.scatter_hits == hits
        assert db.scatter_misses >= 2


class TestCacheSteadyStateShortcut:
    def _replay(self, policy, rounds, capacity=4, shortcut=False):
        cache = PageCache(capacity, policy=policy)
        results = []
        for pids in rounds:
            results.append(
                cache.resolve_round(list(pids), assume_distinct=shortcut))
        return cache, results

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_matches_generic_replay(self, policy):
        rounds = [list(range(10))] * 4 + [list(range(3, 13))]
        slow_cache, slow = self._replay(policy, rounds, shortcut=False)
        fast_cache, fast = self._replay(policy, rounds, shortcut=True)
        assert slow == fast
        assert slow_cache.hits == fast_cache.hits
        assert slow_cache.misses == fast_cache.misses
        assert list(slow_cache._pages) == list(fast_cache._pages)

    def test_not_taken_when_round_fits(self):
        cache = PageCache(16, policy="lru")
        first = cache.resolve_round(list(range(8)), assume_distinct=True)
        second = cache.resolve_round(list(range(8)), assume_distinct=True)
        assert first == [False] * 8
        assert second == [True] * 8


class TestLargePageRunIndex:
    def test_matches_bruteforce(self, machine):
        # Heavy-tailed RMAT with a small page size yields many LP runs.
        graph = generate_rmat(9, edge_factor=12, seed=4)
        db = build_database(graph, PageFormatConfig(2, 2, 512))
        engine = GTSEngine(db, machine)
        lp = np.asarray(db.large_page_ids(), dtype=np.int64)
        assert len(lp) > 0
        expected = {}
        for pid in lp.tolist():
            first = pid - int(db.rvt.lp_ranges[pid])
            expected.setdefault(first, []).append(pid)
        assert set(engine._lp_runs) == set(expected)
        for first, run in expected.items():
            np.testing.assert_array_equal(engine._lp_runs[first], run)


class TestExecutionKnob:
    def test_batched_rejected_for_batchless_kernel(self, db, machine):
        engine = GTSEngine(db, machine, execution="batched")
        with pytest.raises(ConfigurationError):
            engine.run(DegreeKernel())

    def test_auto_falls_back_for_batchless_kernel(self, db, machine):
        result = GTSEngine(db, machine).run(DegreeKernel())
        assert result.execution == "paged"

    def test_auto_prefers_batched(self, db, machine):
        result = GTSEngine(db, machine).run(PageRankKernel(iterations=2))
        assert result.execution == "batched"

    def test_unknown_mode_rejected(self, db, machine):
        with pytest.raises(ConfigurationError):
            GTSEngine(db, machine, execution="warp")

    def test_execution_reported_in_to_dict(self, db, machine):
        engine = GTSEngine(db, machine, execution="paged")
        assert engine.run(
            PageRankKernel(iterations=2)).to_dict()["execution"] == "paged"


class TestCLIExecutionFlag:
    def test_parsed_on_run_and_profile(self):
        for command in ("run", "profile"):
            args = build_parser().parse_args(
                [command, "--dataset", "rmat26", "--execution", "batched"])
            assert args.execution == "batched"

    def test_rejects_unknown_value(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "rmat26", "--execution", "warp"])

    def test_batched_run(self, tmp_path, capsys):
        graph = generate_rmat(7, edge_factor=4, seed=2)
        path = str(tmp_path / "g.txt")
        write_edge_list(graph, path)
        assert main(["run", "--edges", path, "--algorithm", "pagerank",
                     "--iterations", "2", "--execution", "batched"]) == 0
        assert "PageRank" in capsys.readouterr().out

    def test_batchless_algorithm_fails_gracefully(self, tmp_path, capsys):
        graph = generate_rmat(7, edge_factor=4, seed=2)
        path = str(tmp_path / "g.txt")
        write_edge_list(graph, path)
        assert main(["run", "--edges", path, "--algorithm", "degree",
                     "--execution", "batched"]) == 1
        assert "error:" in capsys.readouterr().err
