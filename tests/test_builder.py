"""Tests for the edge-list → slotted-page builder and the database."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError
from repro.format import PageFormatConfig, build_database
from repro.format.page import PageKind
from repro.graphgen import Graph, generate_erdos_renyi, generate_rmat
from repro.graphgen.random_graphs import generate_star
from repro.units import KB


class TestPlacementInvariants:
    def test_validate_passes(self, rmat_db):
        assert rmat_db.validate()

    def test_every_vertex_covered_exactly_once(self, rmat_db):
        seen = set()
        for page in rmat_db.pages:
            if page.kind is PageKind.SMALL:
                for vid in page.vids():
                    assert vid not in seen
                    seen.add(int(vid))
            elif page.chunk_index == 0:
                assert page.vid not in seen
                seen.add(int(page.vid))
        assert seen == set(range(rmat_db.num_vertices))

    def test_every_edge_stored_once(self, rmat_graph, rmat_db):
        total = sum(page.num_edges for page in rmat_db.pages)
        assert total == rmat_graph.num_edges

    def test_vids_consecutive_within_pages(self, rmat_db):
        for page in rmat_db.pages:
            vids = page.vids()
            assert np.array_equal(vids,
                                  np.arange(vids[0], vids[0] + len(vids)))

    def test_pages_respect_capacity(self, rmat_db):
        for page in rmat_db.pages:
            assert page.used_bytes() <= rmat_db.config.page_size

    def test_adjacency_preserved(self, rmat_graph, rmat_db):
        """The database's adjacency equals the source CSR, vertex by
        vertex (large-page chunks concatenate in order)."""
        rebuilt = {}
        for page in rmat_db.pages:
            if page.kind is PageKind.SMALL:
                for i, vid in enumerate(page.vids()):
                    lo, hi = page.adj_indptr[i], page.adj_indptr[i + 1]
                    rebuilt.setdefault(int(vid), []).extend(
                        page.adj_vids[lo:hi])
            else:
                rebuilt.setdefault(int(page.vid), []).extend(page.adj_vids)
        for v in range(rmat_graph.num_vertices):
            assert rebuilt.get(v, []) == list(rmat_graph.neighbors(v))


class TestLargePages:
    def test_star_center_becomes_large_pages(self, small_config):
        star = generate_star(4000)
        db = build_database(star, small_config)
        assert db.num_large_pages >= 2
        large_vids = {page.vid for page in db.pages
                      if page.kind is PageKind.LARGE}
        assert large_vids == {0}

    def test_large_page_chunks_are_consecutive(self, small_config):
        star = generate_star(4000, center=100)
        db = build_database(star, small_config)
        lp_ids = [page.page_id for page in db.pages
                  if page.kind is PageKind.LARGE]
        assert lp_ids == list(range(lp_ids[0], lp_ids[0] + len(lp_ids)))

    def test_total_degree_recorded_on_every_chunk(self, small_config):
        star = generate_star(4000)
        db = build_database(star, small_config)
        for page in db.pages:
            if page.kind is PageKind.LARGE:
                assert page.total_degree == 3999

    def test_large_vertex_addressed_through_first_chunk(self, small_config):
        """Edges pointing at a large vertex use (first LP, slot 0)."""
        num_vertices = 4000
        sources = np.concatenate([
            np.full(num_vertices - 1, 0),
            np.asarray([1]),
        ])
        targets = np.concatenate([
            np.arange(1, num_vertices),
            np.asarray([0]),  # an edge back at the hub
        ])
        graph = Graph.from_edges(num_vertices, sources, targets)
        config = PageFormatConfig(2, 2, 2 * KB)
        db = build_database(graph, config)
        hub_first_lp = db.page_for_vertex(0)
        assert db.rvt.is_large(hub_first_lp)
        # Find vertex 1's record and check its single edge target.
        page = db.page(db.page_for_vertex(1))
        slot = 1 - page.start_vid
        lo = page.adj_indptr[slot]
        assert page.adj_pids[lo] == hub_first_lp
        assert page.adj_slots[lo] == 0

    def test_rvt_lp_range_marks_chunk_positions(self, small_config):
        star = generate_star(4000)
        db = build_database(star, small_config)
        for page in db.pages:
            if page.kind is PageKind.LARGE:
                assert db.rvt.lp_ranges[page.page_id] == page.chunk_index
            else:
                assert db.rvt.lp_ranges[page.page_id] == -1


class TestWeightedBuild:
    def test_weights_stored(self, weighted_graph, weighted_db):
        total = sum(
            float(page.adj_weights.sum()) for page in weighted_db.pages
            if page.adj_weights is not None and page.num_edges)
        assert total == pytest.approx(
            float(weighted_graph.weights.sum()), rel=1e-5)

    def test_unweighted_config_drops_weights(self, weighted_graph,
                                             small_config):
        db = build_database(weighted_graph, small_config)
        assert all(page.adj_weights is None for page in db.pages)


class TestDatabaseAccounting:
    def test_topology_bytes(self, rmat_db):
        assert rmat_db.topology_bytes() == \
            rmat_db.num_pages * rmat_db.config.page_size

    def test_fill_factor_reasonable(self, rmat_db):
        assert 0.5 < rmat_db.fill_factor() <= 1.0

    def test_page_for_vertex(self, rmat_db):
        for vid in (0, 5, rmat_db.num_vertices - 1):
            page = rmat_db.page(rmat_db.page_for_vertex(vid))
            assert vid in page.vids()

    def test_unknown_page_rejected(self, rmat_db):
        with pytest.raises(FormatError):
            rmat_db.page(10 ** 6)

    def test_statistics_keys(self, rmat_db):
        stats = rmat_db.statistics()
        assert stats["num_sp"] == rmat_db.num_small_pages
        assert stats["num_lp"] == rmat_db.num_large_pages
        assert stats["vertices"] == rmat_db.num_vertices

    def test_ra_subvector_bytes(self, rmat_db):
        sp = int(rmat_db.small_page_ids()[0])
        entry = rmat_db.directory[sp]
        assert rmat_db.ra_subvector_bytes(sp, 4) == entry.num_records * 4

    def test_attribute_vector_bytes(self, rmat_db):
        assert rmat_db.attribute_vector_bytes(4) == 4 * rmat_db.num_vertices

    def test_small_and_large_ids_partition_pages(self, rmat_db):
        ids = set(rmat_db.small_page_ids()) | set(rmat_db.large_page_ids())
        assert ids == set(range(rmat_db.num_pages))


class TestAddressingLimits:
    def test_too_many_pages_rejected(self):
        # A 1-byte page ID addresses only 256 pages.
        config = PageFormatConfig(page_id_bytes=1, slot_bytes=2,
                                  page_size=256)
        graph = generate_erdos_renyi(20000, avg_degree=4, seed=0)
        with pytest.raises(FormatError):
            build_database(graph, config)


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_builder_round_trip_property(data):
    """Property: build + re-extract adjacency == source graph."""
    num_vertices = data.draw(st.integers(2, 200))
    num_edges = data.draw(st.integers(0, 500))
    rng_seed = data.draw(st.integers(0, 1000))
    rng = np.random.default_rng(rng_seed)
    sources = rng.integers(0, num_vertices, size=num_edges)
    targets = rng.integers(0, num_vertices, size=num_edges)
    graph = Graph.from_edges(num_vertices, sources, targets)
    config = PageFormatConfig(2, 2, 1 * KB)
    db = build_database(graph, config)
    db.validate()
    rebuilt = {}
    for page in db.pages:
        if page.kind is PageKind.SMALL:
            for i, vid in enumerate(page.vids()):
                lo, hi = page.adj_indptr[i], page.adj_indptr[i + 1]
                rebuilt.setdefault(int(vid), []).extend(page.adj_vids[lo:hi])
        else:
            rebuilt.setdefault(int(page.vid), []).extend(page.adj_vids)
    for v in range(num_vertices):
        assert rebuilt.get(v, []) == list(graph.neighbors(v))
