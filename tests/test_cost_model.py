"""Tests for the Section 5 analytic cost models."""

import pytest

from repro.core import PageRankKernel
from repro.core.cost_model import (
    CostInputs,
    LevelWork,
    bfs_like_cost,
    inputs_from_run,
    pagerank_like_cost,
)
from repro.errors import ConfigurationError
from repro.hardware.specs import scaled_workstation
from repro.units import GB, MB


def _inputs(num_gpus=2, **overrides):
    values = dict(
        wa_bytes=4 * GB,
        ra_bytes=4 * GB,
        sp_bytes=100 * GB,
        lp_bytes=10 * GB,
        num_sp=1600,
        num_lp=160,
        num_gpus=num_gpus,
        chunk_bandwidth=16 * GB,
        stream_bandwidth=6 * GB,
        kernel_launch_overhead=5e-6,
    )
    values.update(overrides)
    return CostInputs(**values)


class TestEquation1:
    def test_wa_term_unaffected_by_gpus(self):
        """2|WA|/c1 does not shrink with N (the paper stresses this)."""
        slim = _inputs(num_gpus=1, sp_bytes=0, lp_bytes=0, ra_bytes=0,
                       num_sp=0, num_lp=0)
        wide = _inputs(num_gpus=8, sp_bytes=0, lp_bytes=0, ra_bytes=0,
                       num_sp=0, num_lp=0)
        assert pagerank_like_cost(slim) == pytest.approx(
            pagerank_like_cost(wide))

    def test_stream_term_divides_by_gpus(self):
        one = pagerank_like_cost(_inputs(num_gpus=1))
        two = pagerank_like_cost(_inputs(num_gpus=2))
        # Only the streaming + call terms halve; WA term is fixed.
        wa_term = 2 * 4 * GB / (16 * GB)
        assert (two - wa_term) == pytest.approx((one - wa_term) / 2)

    def test_sync_term_grows_with_gpus(self):
        def sync_cost(num_gpus):
            with_sync = pagerank_like_cost(
                _inputs(num_gpus=num_gpus, sync_seconds_per_gpu=0.01))
            without = pagerank_like_cost(_inputs(num_gpus=num_gpus))
            return with_sync - without
        assert sync_cost(4) == pytest.approx(2 * sync_cost(2))

    def test_drain_term_added_once(self):
        with_drain = _inputs(page_kernel_seconds=1.5)
        assert pagerank_like_cost(with_drain) == pytest.approx(
            pagerank_like_cost(_inputs()) + 1.5)

    def test_iterations_multiply(self):
        assert pagerank_like_cost(_inputs(), iterations=7) == pytest.approx(
            7 * pagerank_like_cost(_inputs()))

    def test_paper_arithmetic_rmat30(self):
        """Section 7.5: 114 GB x 10 iterations / 6 GB/s ~ 190 s."""
        inputs = _inputs(num_gpus=1, wa_bytes=0, ra_bytes=0,
                         sp_bytes=114 * GB, lp_bytes=0,
                         num_sp=0, num_lp=0)
        estimate = pagerank_like_cost(inputs, iterations=10)
        assert estimate == pytest.approx(190, rel=0.01)


class TestEquation2:
    def _level(self, mb=64, pages=1):
        return LevelWork(ra_bytes=0, sp_bytes=mb * MB, lp_bytes=0,
                         num_sp=pages, num_lp=0)

    def test_levels_sum(self):
        inputs = _inputs()
        one = bfs_like_cost(inputs, [self._level()])
        wa_term = 2 * 4 * GB / (16 * GB)
        three = bfs_like_cost(inputs, [self._level()] * 3)
        assert (three - wa_term) == pytest.approx(3 * (one - wa_term))

    def test_cache_hits_remove_transfers(self):
        inputs = _inputs()
        cold = bfs_like_cost(inputs, [self._level()], hit_rate=0.0)
        warm = bfs_like_cost(inputs, [self._level()], hit_rate=1.0)
        wa_term = 2 * 4 * GB / (16 * GB)
        # Only the kernel-call overhead remains beyond the WA term.
        assert warm == pytest.approx(wa_term, rel=1e-4)
        assert cold > warm

    def test_skew_inflates_time(self):
        inputs = _inputs()
        balanced = bfs_like_cost(inputs, [self._level()], d_skew=1.0)
        skewed = bfs_like_cost(inputs, [self._level()], d_skew=0.5)
        assert skewed > balanced

    def test_validates_skew_and_hit_rate(self):
        inputs = _inputs()
        with pytest.raises(ConfigurationError):
            bfs_like_cost(inputs, [self._level()], d_skew=0.0)
        with pytest.raises(ConfigurationError):
            bfs_like_cost(inputs, [self._level()], hit_rate=1.5)

    def test_accepts_single_level(self):
        inputs = _inputs()
        assert bfs_like_cost(inputs, self._level()) > 0


class TestInputsFromRun:
    def test_pulls_sizes_from_database(self, rmat_db, machine):
        inputs = inputs_from_run(rmat_db, machine, PageRankKernel())
        assert inputs.wa_bytes == 4 * rmat_db.num_vertices
        assert inputs.sp_bytes == (rmat_db.num_small_pages
                                   * rmat_db.config.page_size)
        assert inputs.num_gpus == machine.num_gpus

    def test_gpu_override(self, rmat_db, machine):
        inputs = inputs_from_run(rmat_db, machine, PageRankKernel(),
                                 num_gpus=7)
        assert inputs.num_gpus == 7

    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigurationError):
            _inputs(num_gpus=0)
