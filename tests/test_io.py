"""Tests for graph I/O and database persistence."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.format import build_database
from repro.format.io import load_database, save_database
from repro.graphgen import Graph, generate_rmat
from repro.graphgen.io import (
    read_binary,
    read_edge_list,
    write_binary,
    write_edge_list,
)


@pytest.fixture
def graph():
    return generate_rmat(8, edge_factor=8, seed=55)


@pytest.fixture
def weighted(graph):
    return graph.with_random_weights(seed=3)


class TestEdgeListText:
    def test_round_trip(self, graph, tmp_path):
        path = str(tmp_path / "graph.txt")
        write_edge_list(graph, path)
        loaded = read_edge_list(path, num_vertices=graph.num_vertices)
        assert np.array_equal(loaded.indptr, graph.indptr)
        assert np.array_equal(loaded.targets, graph.targets)

    def test_round_trip_weighted(self, weighted, tmp_path):
        path = str(tmp_path / "graph.txt")
        write_edge_list(weighted, path)
        loaded = read_edge_list(path)
        assert np.allclose(loaded.weights, weighted.weights, rtol=1e-4)

    def test_vertex_count_inferred(self, tmp_path):
        path = str(tmp_path / "graph.txt")
        with open(path, "w") as handle:
            handle.write("0 5\n3 1\n")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 6

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = str(tmp_path / "graph.txt")
        with open(path, "w") as handle:
            handle.write("# header\n\n% matrix market style\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = str(tmp_path / "graph.txt")
        with open(path, "w") as handle:
            handle.write("42\n")
        with pytest.raises(FormatError):
            read_edge_list(path)

    def test_mixed_weighting_rejected(self, tmp_path):
        path = str(tmp_path / "graph.txt")
        with open(path, "w") as handle:
            handle.write("0 1 2.5\n1 0\n")
        with pytest.raises(FormatError):
            read_edge_list(path)


class TestEdgeListBinary:
    def test_round_trip(self, graph, tmp_path):
        path = str(tmp_path / "graph.bin")
        write_binary(graph, path)
        loaded = read_binary(path)
        assert loaded.num_vertices == graph.num_vertices
        assert np.array_equal(loaded.targets, graph.targets)

    def test_round_trip_weighted(self, weighted, tmp_path):
        path = str(tmp_path / "graph.bin")
        write_binary(weighted, path)
        loaded = read_binary(path)
        assert np.array_equal(loaded.weights, weighted.weights)

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.bin")
        with open(path, "wb") as handle:
            handle.write(b"NOPE" + b"\x00" * 32)
        with pytest.raises(FormatError):
            read_binary(path)


class TestDatabasePersistence:
    def test_round_trip_validates(self, rmat_db, tmp_path):
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        loaded = load_database(prefix)
        assert loaded.num_vertices == rmat_db.num_vertices
        assert loaded.num_edges == rmat_db.num_edges
        assert loaded.num_small_pages == rmat_db.num_small_pages
        assert loaded.num_large_pages == rmat_db.num_large_pages

    def test_round_trip_preserves_adjacency(self, rmat_db, tmp_path):
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        loaded = load_database(prefix)
        for original, restored in zip(rmat_db.pages, loaded.pages):
            assert np.array_equal(original.adj_vids, restored.adj_vids)

    def test_round_trip_preserves_weights(self, weighted_db, tmp_path):
        prefix = str(tmp_path / "db")
        save_database(weighted_db, prefix)
        loaded = load_database(prefix)
        for original, restored in zip(weighted_db.pages, loaded.pages):
            if original.adj_weights is not None:
                assert np.allclose(original.adj_weights,
                                   restored.adj_weights)

    def test_loaded_database_runs_algorithms(self, rmat_graph, rmat_db,
                                             machine, tmp_path):
        from repro.baselines import reference
        from repro.core import BFSKernel, GTSEngine
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        loaded = load_database(prefix)
        start = int(np.argmax(rmat_graph.out_degrees()))
        result = GTSEngine(loaded, machine).run(BFSKernel(start))
        assert np.array_equal(result.values["level"],
                              reference.bfs_levels(rmat_graph, start))

    def test_truncated_pages_file_rejected(self, rmat_db, tmp_path):
        prefix = str(tmp_path / "db")
        _, pages_path = save_database(rmat_db, prefix)
        with open(pages_path, "ab") as handle:
            handle.write(b"\x00")
        with pytest.raises(FormatError):
            load_database(prefix)

    def test_version_checked(self, rmat_db, tmp_path):
        import json
        prefix = str(tmp_path / "db")
        meta_path, _ = save_database(rmat_db, prefix)
        with open(meta_path) as handle:
            metadata = json.load(handle)
        metadata["version"] = 999
        with open(meta_path, "w") as handle:
            json.dump(metadata, handle)
        with pytest.raises(FormatError):
            load_database(prefix)


class TestFileBackedDatabase:
    def _open(self, rmat_db, tmp_path, pool_pages=32):
        from repro.format.io import FileBackedDatabase
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        return FileBackedDatabase(prefix, pool_pages=pool_pages)

    def test_metadata_matches(self, rmat_db, tmp_path):
        lazy = self._open(rmat_db, tmp_path)
        assert lazy.num_vertices == rmat_db.num_vertices
        assert lazy.num_edges == rmat_db.num_edges
        assert lazy.num_small_pages == rmat_db.num_small_pages
        assert lazy.num_large_pages == rmat_db.num_large_pages

    def test_pages_parse_on_demand(self, rmat_db, tmp_path):
        lazy = self._open(rmat_db, tmp_path, pool_pages=8)
        assert lazy.resident_pages() == 0
        page = lazy.page(0)
        assert lazy.resident_pages() == 1
        assert np.array_equal(page.adj_vids, rmat_db.page(0).adj_vids)

    def test_pool_bounded(self, rmat_db, tmp_path):
        lazy = self._open(rmat_db, tmp_path, pool_pages=4)
        for pid in range(min(20, lazy.num_pages)):
            lazy.page(pid)
        assert lazy.resident_pages() <= 4

    def test_pool_hits_counted(self, rmat_db, tmp_path):
        lazy = self._open(rmat_db, tmp_path)
        lazy.page(3)
        lazy.page(3)
        assert lazy.pool_hits == 1
        assert lazy.pool_misses == 1

    def test_validate_decodes_every_page(self, rmat_db, tmp_path):
        assert self._open(rmat_db, tmp_path).validate()

    def test_engine_runs_on_lazy_database(self, rmat_graph, rmat_db,
                                          machine, tmp_path):
        from repro.baselines import reference
        from repro.core import GTSEngine, PageRankKernel
        lazy = self._open(rmat_db, tmp_path, pool_pages=16)
        result = GTSEngine(lazy, machine).run(PageRankKernel(iterations=3))
        expected = reference.pagerank(rmat_graph, iterations=3)
        assert np.allclose(result.values["rank"], expected, atol=1e-12)

    def test_pool_size_validated(self, rmat_db, tmp_path):
        from repro.format.io import FileBackedDatabase
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        with pytest.raises(FormatError):
            FileBackedDatabase(prefix, pool_pages=0)

    def test_unknown_page_rejected(self, rmat_db, tmp_path):
        lazy = self._open(rmat_db, tmp_path)
        with pytest.raises(FormatError):
            lazy.page(10 ** 6)


class TestEnginePagePool:
    """The engine must see identical results through a page pool small
    enough to force evictions, and surface the pool's hit rate."""

    def _open(self, rmat_db, tmp_path, pool_pages):
        from repro.format.io import FileBackedDatabase
        prefix = str(tmp_path / "pooled")
        save_database(rmat_db, prefix)
        return FileBackedDatabase(prefix, pool_pages=pool_pages)

    def test_results_identical_under_eviction_pressure(self, rmat_db,
                                                       machine, tmp_path):
        from repro.core import BFSKernel, GTSEngine, PageRankKernel

        # A pool far smaller than the database forces constant eviction.
        # The per-page path is pinned because it is the one that touches
        # the pool every round (the batched path reads each page exactly
        # once to build its plan, so it cannot generate re-read traffic).
        pool_pages = max(2, rmat_db.num_pages // 8)
        lazy = self._open(rmat_db, tmp_path, pool_pages)
        start = int(np.argmax(rmat_db.out_degrees))

        eager_engine = GTSEngine(rmat_db, machine, execution="paged")
        lazy_engine = GTSEngine(lazy, machine, execution="paged")
        batched_engine = GTSEngine(lazy, machine, execution="batched")
        for kernel_factory in (lambda: BFSKernel(start_vertex=start),
                               lambda: PageRankKernel(iterations=4)):
            want = eager_engine.run(kernel_factory())
            got = lazy_engine.run(kernel_factory())
            fast = batched_engine.run(kernel_factory())
            for key in want.values:
                np.testing.assert_allclose(
                    got.values[key], want.values[key], atol=1e-12)
                np.testing.assert_array_equal(
                    fast.values[key], got.values[key])
            assert fast.elapsed_seconds == got.elapsed_seconds

        # Eviction really happened: the pool stayed at capacity and
        # pages were re-read after being dropped.
        assert lazy.resident_pages() <= pool_pages
        assert lazy.pool_misses > lazy.num_pages

    def test_run_result_reports_pool_hit_rate(self, rmat_db, machine,
                                              tmp_path):
        from repro.core import GTSEngine, PageRankKernel

        lazy = self._open(rmat_db, tmp_path, pool_pages=16)
        result = GTSEngine(lazy, machine).run(PageRankKernel(iterations=3))
        assert result.pool_hits + result.pool_misses > 0
        assert 0.0 <= result.pool_hit_rate <= 1.0
        assert "page-pool hit rate" in result.summary()
        payload = result.to_dict()
        assert payload["pool_hits"] == result.pool_hits
        assert payload["pool_misses"] == result.pool_misses

    def test_counters_are_per_run_deltas(self, rmat_db, machine, tmp_path):
        from repro.core import GTSEngine, PageRankKernel

        lazy = self._open(rmat_db, tmp_path, pool_pages=16)
        engine = GTSEngine(lazy, machine)
        first = engine.run(PageRankKernel(iterations=2))
        second = engine.run(PageRankKernel(iterations=2))
        # Each RunResult carries only its own run's pool traffic, not
        # the database's cumulative counters.
        assert second.pool_hits + second.pool_misses < (
            lazy.pool_hits + lazy.pool_misses)
        assert first.pool_misses > 0
