"""Tests for the ``python -m repro`` command line."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphgen import generate_rmat
from repro.graphgen.io import write_edge_list


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "bfs"])

    def test_run_sources_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "rmat26", "--edges", "x.txt"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "rmat26", "--algorithm", "magic"])


class TestDatasetsCommand:
    def test_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "rmat26" in output
        assert "yahooweb" in output


class TestRunCommand:
    def test_bfs_on_registry_dataset(self, capsys):
        assert main(["run", "--dataset", "rmat26",
                     "--algorithm", "bfs"]) == 0
        output = capsys.readouterr().out
        assert "BFS on rmat26" in output
        assert "level" in output

    def test_pagerank_with_options(self, capsys):
        assert main(["run", "--dataset", "rmat26",
                     "--algorithm", "pagerank", "--iterations", "3",
                     "--streams", "4", "--strategy", "scalability",
                     "--micro", "hybrid", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "PageRank on rmat26" in output
        assert "scalability" in output

    def test_kcore(self, capsys):
        assert main(["run", "--dataset", "rmat26",
                     "--algorithm", "kcore", "--k", "3"]) == 0
        assert "KCore" in capsys.readouterr().out

    def test_edge_list_file(self, tmp_path, capsys):
        graph = generate_rmat(7, edge_factor=4, seed=2)
        path = str(tmp_path / "g.txt")
        write_edge_list(graph, path)
        assert main(["run", "--edges", path, "--algorithm", "bfs",
                     "--start", "0"]) == 0
        assert "BFS" in capsys.readouterr().out

    def test_gts_error_becomes_exit_code(self, tmp_path, capsys):
        graph = generate_rmat(7, edge_factor=4, seed=2)
        path = str(tmp_path / "g.txt")
        write_edge_list(graph, path)
        # One-GPU machine with start vertex out of range.
        assert main(["run", "--edges", path, "--algorithm", "bfs",
                     "--start", "999999"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRecommendCommand:
    def test_prints_recommendation(self, capsys):
        assert main(["recommend", "--dataset", "rmat26",
                     "--algorithm", "pagerank"]) == 0
        output = capsys.readouterr().out
        assert "recommendation" in output
        assert "streams" in output


class TestBenchCommand:
    def test_table2(self, capsys):
        assert main(["bench", "--experiment", "table2"]) == 0
        assert "80.00 GB" in capsys.readouterr().out

    def test_fig14(self, capsys):
        assert main(["bench", "--experiment", "fig14",
                     "--algorithm", "BFS"]) == 0
        assert "vertex-centric" in capsys.readouterr().out


class TestReportCommand:
    def test_aggregates_results(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table2_idconfig.txt").write_text("Table 2 body\n")
        (results / "custom_extra.txt").write_text("extra body\n")
        assert main(["report", "--results-dir", str(results)]) == 0
        output = capsys.readouterr().out
        assert "REPORT.md" in output
        report = (results / "REPORT.md").read_text()
        assert "Table 2 body" in report
        assert "extra body" in report
        assert "missing artifacts" in output or True

    def test_missing_results_reported(self, tmp_path, capsys):
        results = tmp_path / "empty"
        results.mkdir()
        assert main(["report", "--results-dir", str(results)]) == 0
        assert "missing artifacts" in capsys.readouterr().out
