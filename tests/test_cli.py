"""Tests for the ``python -m repro`` command line."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphgen import generate_rmat
from repro.graphgen.io import write_edge_list
from repro.obs import validate_chrome_trace


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "bfs"])

    def test_run_sources_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "rmat26", "--edges", "x.txt"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "rmat26", "--algorithm", "magic"])


class TestDatasetsCommand:
    def test_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "rmat26" in output
        assert "yahooweb" in output


class TestRunCommand:
    def test_bfs_on_registry_dataset(self, capsys):
        assert main(["run", "--dataset", "rmat26",
                     "--algorithm", "bfs"]) == 0
        output = capsys.readouterr().out
        assert "BFS on rmat26" in output
        assert "level" in output

    def test_pagerank_with_options(self, capsys):
        assert main(["run", "--dataset", "rmat26",
                     "--algorithm", "pagerank", "--iterations", "3",
                     "--streams", "4", "--strategy", "scalability",
                     "--micro", "hybrid", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "PageRank on rmat26" in output
        assert "scalability" in output

    def test_kcore(self, capsys):
        assert main(["run", "--dataset", "rmat26",
                     "--algorithm", "kcore", "--k", "3"]) == 0
        assert "KCore" in capsys.readouterr().out

    def test_edge_list_file(self, tmp_path, capsys):
        graph = generate_rmat(7, edge_factor=4, seed=2)
        path = str(tmp_path / "g.txt")
        write_edge_list(graph, path)
        assert main(["run", "--edges", path, "--algorithm", "bfs",
                     "--start", "0"]) == 0
        assert "BFS" in capsys.readouterr().out

    def test_gts_error_becomes_exit_code(self, tmp_path, capsys):
        graph = generate_rmat(7, edge_factor=4, seed=2)
        path = str(tmp_path / "g.txt")
        write_edge_list(graph, path)
        # One-GPU machine with start vertex out of range.
        assert main(["run", "--edges", path, "--algorithm", "bfs",
                     "--start", "999999"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSavedDatabaseRuns:
    def _save(self, tmp_path):
        from repro.format import PageFormatConfig, build_database
        from repro.format.io import save_database
        graph = generate_rmat(6, edge_factor=4, seed=3)
        config = PageFormatConfig(2, 2, 2048)
        prefix = str(tmp_path / "saved")
        save_database(build_database(graph, config), prefix)
        return prefix

    def test_run_on_saved_database(self, tmp_path, capsys):
        prefix = self._save(tmp_path)
        assert main(["run", "--db", prefix, "--algorithm", "bfs"]) == 0
        assert "BFS" in capsys.readouterr().out

    def test_weighted_algorithm_rejects_unweighted_db(self, tmp_path,
                                                      capsys):
        """`run --db` must not hand an unweighted topology to a kernel
        that needs edge weights (adj_weights would be None)."""
        prefix = self._save(tmp_path)
        assert main(["run", "--db", prefix, "--algorithm", "sssp"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "weight" in err

    def test_symmetrised_algorithm_warns_on_db(self, tmp_path, capsys):
        prefix = self._save(tmp_path)
        assert main(["run", "--db", prefix, "--algorithm", "cc"]) == 0
        captured = capsys.readouterr()
        assert "used as-is" in captured.err
        assert "CC" in captured.out


class TestRunArtifacts:
    def test_json_output_mode(self, capsys):
        assert main(["run", "--dataset", "rmat26",
                     "--algorithm", "bfs", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "BFS"
        assert payload["dataset"] == "rmat26"
        assert payload["num_rounds"] == len(payload["rounds"])
        assert payload["elapsed_seconds"] > 0
        # Value arrays are summarised, not dumped.
        assert set(payload["values"]["level"]) \
            == {"dtype", "size", "min", "max"}

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path,
                                                 capsys):
        path = str(tmp_path / "trace.json")
        assert main(["run", "--dataset", "rmat26", "--algorithm",
                     "pagerank", "--iterations", "2",
                     "--trace-out", path]) == 0
        assert "wrote trace" in capsys.readouterr().err
        events = validate_chrome_trace(json.load(open(path)))
        assert any(e.get("name") == "kernel" for e in events)

    def test_metrics_out_includes_drift(self, tmp_path, capsys):
        path = str(tmp_path / "metrics.json")
        assert main(["run", "--dataset", "rmat26", "--algorithm",
                     "bfs", "--metrics-out", path]) == 0
        payload = json.load(open(path))
        assert payload["meta"]["algorithm"] == "BFS"
        metrics = payload["metrics"]
        assert metrics["run.elapsed_seconds"]["value"] > 0
        assert metrics["round.latency_seconds"]["value"]["count"] > 0
        assert "cost_model.drift" in metrics


class TestProfileCommand:
    def test_prints_timeline_and_drift(self, capsys):
        assert main(["profile", "--dataset", "rmat26",
                     "--algorithm", "bfs", "--width", "40"]) == 0
        output = capsys.readouterr().out
        assert "gpu0/copy engine" in output
        assert "gpu0/stream[0]" in output
        assert "drift" in output

    def test_profile_writes_artifacts(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        metrics = str(tmp_path / "metrics.json")
        assert main(["profile", "--dataset", "rmat26",
                     "--algorithm", "pagerank", "--iterations", "2",
                     "--trace-out", trace,
                     "--metrics-out", metrics]) == 0
        validate_chrome_trace(json.load(open(trace)))
        assert "cost_model.drift" in json.load(open(metrics))["metrics"]


class TestRecommendCommand:
    def test_prints_recommendation(self, capsys):
        assert main(["recommend", "--dataset", "rmat26",
                     "--algorithm", "pagerank"]) == 0
        output = capsys.readouterr().out
        assert "recommendation" in output
        assert "streams" in output


class TestBenchCommand:
    def test_table2(self, capsys):
        assert main(["bench", "--experiment", "table2"]) == 0
        assert "80.00 GB" in capsys.readouterr().out

    def test_fig14(self, capsys):
        assert main(["bench", "--experiment", "fig14",
                     "--algorithm", "BFS"]) == 0
        assert "vertex-centric" in capsys.readouterr().out


class TestObsAnalyzeCommand:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert main(["run", "--dataset", "rmat26", "--algorithm",
                     "pagerank", "--iterations", "2", "--no-cache",
                     "--trace-out", path]) == 0
        return path

    def test_analyze_reports_overlap(self, trace_path, capsys):
        assert main(["obs", "analyze", trace_path]) == 0
        output = capsys.readouterr().out
        assert "overlap-hiding ratio" in output
        assert "rounds" in output

    def test_analyze_json_and_out(self, trace_path, tmp_path, capsys):
        out = str(tmp_path / "analysis.json")
        assert main(["obs", "analyze", trace_path, "--json",
                     "--out", out]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "gts-trace-analysis/1"
        assert payload == json.load(open(out))

    def test_missing_trace_is_an_error(self, capsys):
        assert main(["obs", "analyze", "/nonexistent/trace.json"]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsCompareCommand:
    def _write(self, tmp_path, name, elapsed):
        path = tmp_path / name
        path.write_text(json.dumps(
            {"run": {"elapsed_seconds": elapsed, "mteps": 1.0}}))
        return str(path)

    def test_unchanged_exits_zero(self, tmp_path, capsys):
        before = self._write(tmp_path, "a.json", 1.0)
        after = self._write(tmp_path, "b.json", 1.0)
        assert main(["obs", "compare", before, after]) == 0
        assert "UNCHANGED" in capsys.readouterr().out

    def test_synthetic_regression_exits_nonzero(self, tmp_path,
                                                capsys):
        before = self._write(tmp_path, "a.json", 1.0)
        after = self._write(tmp_path, "b.json", 2.0)
        assert main(["obs", "compare", before, after]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_custom_rules_and_json(self, tmp_path, capsys):
        before = self._write(tmp_path, "a.json", 1.0)
        after = self._write(tmp_path, "b.json", 2.0)
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([{
            "pattern": "run.elapsed_seconds", "direction": "lower",
            "rel_tol": 5.0}]))
        assert main(["obs", "compare", before, after,
                     "--rules", str(rules), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "unchanged"

    def test_history_gate(self, tmp_path, capsys):
        from repro.obs.history import append_history
        history = str(tmp_path / "hist.jsonl")
        append_history(history, "bench",
                       {"run": {"elapsed_seconds": 1.0}},
                       meta={"quick": True})
        current = self._write(tmp_path, "fresh.json", 2.0)
        assert main(["obs", "compare", "--history", history,
                     "--benchmark", "bench", "--match", "quick=true",
                     current]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # A meta filter with no matching baseline gates nothing.
        assert main(["obs", "compare", "--history", history,
                     "--benchmark", "bench", "--match", "quick=false",
                     current]) == 0
        assert "no matching" in capsys.readouterr().out

    def test_history_requires_benchmark(self, tmp_path, capsys):
        current = self._write(tmp_path, "fresh.json", 1.0)
        assert main(["obs", "compare", "--history",
                     str(tmp_path / "h.jsonl"), current]) == 1
        assert "--benchmark" in capsys.readouterr().err

    def test_two_files_required_without_history(self, tmp_path,
                                                capsys):
        only = self._write(tmp_path, "a.json", 1.0)
        assert main(["obs", "compare", only]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_match_syntax(self, tmp_path, capsys):
        current = self._write(tmp_path, "fresh.json", 1.0)
        assert main(["obs", "compare", "--history",
                     str(tmp_path / "h.jsonl"), "--benchmark", "bench",
                     "--match", "noequals", current]) == 1
        assert "KEY=VALUE" in capsys.readouterr().err


class TestObsHistoryCommand:
    def test_lists_records(self, tmp_path, capsys):
        from repro.obs.history import append_history
        history = str(tmp_path / "hist.jsonl")
        append_history(history, "bench", {"x": 1},
                       meta={"quick": True}, generated="t0")
        append_history(history, "other", {"y": 2}, generated="t1")
        assert main(["obs", "history", "--path", history]) == 0
        output = capsys.readouterr().out
        assert "bench" in output and "other" in output
        assert main(["obs", "history", "--path", history,
                     "--benchmark", "bench", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["benchmark"] for r in payload] == ["bench"]

    def test_checked_in_history_is_loadable(self, capsys):
        import os
        root = os.path.dirname(os.path.dirname(os.path.abspath(
            __file__)))
        path = os.path.join(root, "BENCH_history.jsonl")
        assert main(["obs", "history", "--path", path]) == 0
        output = capsys.readouterr().out
        assert "wallclock_batched_vs_paged" in output
        assert "fault_injection_zero_fault_overhead" in output


class TestReportCommand:
    def test_aggregates_results(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table2_idconfig.txt").write_text("Table 2 body\n")
        (results / "custom_extra.txt").write_text("extra body\n")
        assert main(["report", "--results-dir", str(results)]) == 0
        output = capsys.readouterr().out
        assert "REPORT.md" in output
        report = (results / "REPORT.md").read_text()
        assert "Table 2 body" in report
        assert "extra body" in report
        assert "missing artifacts" in output or True

    def test_missing_results_reported(self, tmp_path, capsys):
        results = tmp_path / "empty"
        results.mkdir()
        assert main(["report", "--results-dir", str(results)]) == 0
        assert "missing artifacts" in capsys.readouterr().out
