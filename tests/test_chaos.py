"""Chaos suite: whole-engine runs under injected faults.

The contract under test is the robustness invariant from the fault
subsystem's design: a run whose faults are all *recoverable* produces
**bit-identical algorithm output** to the fault-free run — faults cost
simulated time, never correctness — and an *unrecoverable* fault raises
a typed error instead of returning wrong answers.
"""

import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core import BFSKernel, GTSEngine, PageRankKernel
from repro.dynamic import UpdateBatch, open_dynamic_database
from repro.errors import DeviceLostError
from repro.faults import FaultPlan
from repro.format import build_database
from repro.format.io import FileBackedDatabase, save_database
from repro.graphgen import Graph
from repro.obs import collect_run_metrics
from repro.units import KB

SEEDS = [0, 1, 2]

#: Rates low enough that every fault is survivable under the default
#: retry policy, high enough that every seed injects at least one.
RECOVERABLE = FaultPlan(ssd_transient_rate=0.02, ssd_corrupt_rate=0.01,
                        copy_error_rate=0.01, stall_rate=0.03,
                        stall_seconds=2e-4)


def _run(db, machine, kernel, **kwargs):
    kwargs.setdefault("mm_buffer_bytes", 64 * KB)
    return GTSEngine(db, machine, **kwargs).run(kernel)


def _assert_same_values(faulted, clean):
    assert set(faulted.values) == set(clean.values)
    for key, array in clean.values.items():
        assert np.array_equal(faulted.values[key], array), key


class TestRecoverableFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("make_kernel", [
        lambda: PageRankKernel(iterations=3),
        lambda: BFSKernel(start_vertex=0),
    ], ids=["pagerank", "bfs"])
    def test_bit_identical_results_only_slower(self, rmat_db, machine,
                                               seed, make_kernel):
        clean = _run(rmat_db, machine, make_kernel())
        faulted = _run(rmat_db, machine, make_kernel(),
                       faults=RECOVERABLE, fault_seed=seed)
        _assert_same_values(faulted, clean)
        stats = faulted.fault_stats
        assert stats is not None
        assert stats["seed"] == seed
        assert stats["faults_injected"] > 0
        assert faulted.elapsed_seconds > clean.elapsed_seconds
        assert clean.fault_stats is None

    def test_fault_metrics_reach_the_registry(self, rmat_db, machine):
        result = _run(rmat_db, machine, PageRankKernel(iterations=3),
                      faults=RECOVERABLE, fault_seed=1)
        registry = collect_run_metrics(result)
        stats = result.fault_stats
        assert registry["faults.injected"].value == stats["faults_injected"]
        assert registry["faults.retries"].value == stats["retries"]
        assert (registry["faults.backoff_seconds"].value
                == stats["backoff_seconds"])

    def test_fault_stats_serialize_and_summarize(self, rmat_db, machine):
        result = _run(rmat_db, machine, BFSKernel(start_vertex=0),
                      faults=RECOVERABLE, fault_seed=2)
        payload = result.to_dict()
        assert payload["fault_stats"] == result.fault_stats
        assert "fault(s) injected" in result.summary()


class TestBatchedDegradation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulted_rounds_fall_back_to_paged(self, rmat_db, machine,
                                               seed):
        clean = _run(rmat_db, machine, PageRankKernel(iterations=3),
                     execution="batched")
        faulted = _run(rmat_db, machine, PageRankKernel(iterations=3),
                       execution="batched", faults=RECOVERABLE,
                       fault_seed=seed)
        _assert_same_values(faulted, clean)
        assert faulted.fault_stats["fallback_rounds"] > 0
        assert faulted.elapsed_seconds > clean.elapsed_seconds


class TestDeviceLoss:
    def test_performance_strategy_survives_a_dead_gpu(self, rmat_db,
                                                      machine):
        clean = _run(rmat_db, machine, PageRankKernel(iterations=3),
                     strategy="performance")
        faulted = _run(rmat_db, machine, PageRankKernel(iterations=3),
                       strategy="performance",
                       faults=FaultPlan(gpu_loss={1: 0.0}))
        _assert_same_values(faulted, clean)
        assert faulted.fault_stats["dead_gpus"] == [1]
        assert faulted.fault_stats["devices_lost"] == 1

    def test_scalability_strategy_cannot_survive_gpu_loss(self, rmat_db,
                                                          machine):
        engine = GTSEngine(rmat_db, machine, strategy="scalability",
                           faults=FaultPlan(gpu_loss={1: 0.0}))
        with pytest.raises(DeviceLostError) as info:
            engine.run(PageRankKernel(iterations=3))
        assert info.value.device == "gpu:1"

    def test_losing_every_gpu_is_fatal(self, rmat_db, machine):
        engine = GTSEngine(rmat_db, machine, strategy="performance",
                           faults=FaultPlan(gpu_loss={0: 0.0, 1: 0.0}))
        with pytest.raises(DeviceLostError):
            engine.run(PageRankKernel(iterations=3))

    def test_ssd_loss_is_fatal(self, rmat_db, machine):
        engine = GTSEngine(rmat_db, machine, mm_buffer_bytes=64 * KB,
                           faults=FaultPlan(ssd_loss={0: 0.0}))
        with pytest.raises(DeviceLostError) as info:
            engine.run(PageRankKernel(iterations=3))
        assert info.value.lost_at == 0.0


class TestHostCorruption:
    def test_corrupt_host_reads_recovered_bit_identically(
            self, rmat_db, machine, tmp_path):
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        clean = _run(FileBackedDatabase(prefix), machine,
                     PageRankKernel(iterations=3))
        faulted_db = FileBackedDatabase(prefix)
        plan = FaultPlan(host_corrupt_reads={0: 1, 2: 1})
        faulted = _run(faulted_db, machine, PageRankKernel(iterations=3),
                       faults=plan)
        _assert_same_values(faulted, clean)
        assert faulted.fault_stats["host_corrupt_faults"] == 2
        assert faulted.fault_stats["integrity_retries"] == 2
        # The engine detaches its injector after the run.
        assert faulted_db.fault_injector is None


CRASH_SCRIPT = textwrap.dedent("""\
    import os
    import sys

    from repro.dynamic import compact, open_dynamic_database

    prefix = sys.argv[1]
    db = open_dynamic_database(prefix)

    def exploding_replace(src, dst):
        os._exit(17)  # power cut mid-save: no replace ever lands

    os.replace = exploding_replace
    compact(db, save_prefix=prefix)
    os._exit(0)  # unreachable
""")


class TestCrashConsistency:
    def test_crash_during_compaction_save_recovers_via_wal(
            self, tmp_path, small_config):
        vids = np.arange(5)
        graph = Graph.from_edges(6, vids, vids + 1)
        prefix = str(tmp_path / "crash")
        save_database(build_database(graph, small_config), prefix)
        db = open_dynamic_database(prefix)
        db.apply(UpdateBatch().insert_edge(0, 3))
        db.apply(UpdateBatch().add_vertices(1).insert_edge(6, 0))
        del db

        script = tmp_path / "crash_compact.py"
        script.write_text(CRASH_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "src"),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        proc = subprocess.run([sys.executable, str(script), prefix],
                              env=env, capture_output=True, text=True)
        assert proc.returncode == 17, proc.stderr

        # The kill landed before any rename: base files and WAL are the
        # pre-compaction ones and the epoch guard replays the log.
        with open(prefix + ".meta.json") as handle:
            assert json.load(handle).get("wal_epoch", 0) == 0
        recovered = open_dynamic_database(prefix)
        assert 3 in recovered.effective_neighbors(0)
        assert list(recovered.effective_neighbors(6)) == [0]
        assert recovered.num_vertices == 7
        recovered.validate()
