"""Chaos suite: whole-engine runs under injected faults.

The contract under test is the robustness invariant from the fault
subsystem's design: a run whose faults are all *recoverable* produces
**bit-identical algorithm output** to the fault-free run — faults cost
simulated time, never correctness — and an *unrecoverable* fault raises
a typed error instead of returning wrong answers.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import textwrap
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BFSKernel, GTSEngine, PageRankKernel
from repro.dynamic import (DynamicGraphDatabase, UpdateBatch,
                           open_dynamic_database)
from repro.errors import DeviceLostError
from repro.faults import FaultPlan
from repro.format import build_database
from repro.format.io import FileBackedDatabase, save_database
from repro.graphgen import Graph
from repro.obs import collect_run_metrics
from repro.units import KB

SEEDS = [0, 1, 2]

#: Rates low enough that every fault is survivable under the default
#: retry policy, high enough that every seed injects at least one.
RECOVERABLE = FaultPlan(ssd_transient_rate=0.02, ssd_corrupt_rate=0.01,
                        copy_error_rate=0.01, stall_rate=0.03,
                        stall_seconds=2e-4)


def _run(db, machine, kernel, **kwargs):
    kwargs.setdefault("mm_buffer_bytes", 64 * KB)
    return GTSEngine(db, machine, **kwargs).run(kernel)


def _assert_same_values(faulted, clean):
    assert set(faulted.values) == set(clean.values)
    for key, array in clean.values.items():
        assert np.array_equal(faulted.values[key], array), key


class TestRecoverableFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("make_kernel", [
        lambda: PageRankKernel(iterations=3),
        lambda: BFSKernel(start_vertex=0),
    ], ids=["pagerank", "bfs"])
    def test_bit_identical_results_only_slower(self, rmat_db, machine,
                                               seed, make_kernel):
        clean = _run(rmat_db, machine, make_kernel())
        faulted = _run(rmat_db, machine, make_kernel(),
                       faults=RECOVERABLE, fault_seed=seed)
        _assert_same_values(faulted, clean)
        stats = faulted.fault_stats
        assert stats is not None
        assert stats["seed"] == seed
        assert stats["faults_injected"] > 0
        assert faulted.elapsed_seconds > clean.elapsed_seconds
        assert clean.fault_stats is None

    def test_fault_metrics_reach_the_registry(self, rmat_db, machine):
        result = _run(rmat_db, machine, PageRankKernel(iterations=3),
                      faults=RECOVERABLE, fault_seed=1)
        registry = collect_run_metrics(result)
        stats = result.fault_stats
        assert registry["faults.injected"].value == stats["faults_injected"]
        assert registry["faults.retries"].value == stats["retries"]
        assert (registry["faults.backoff_seconds"].value
                == stats["backoff_seconds"])

    def test_fault_stats_serialize_and_summarize(self, rmat_db, machine):
        result = _run(rmat_db, machine, BFSKernel(start_vertex=0),
                      faults=RECOVERABLE, fault_seed=2)
        payload = result.to_dict()
        assert payload["fault_stats"] == result.fault_stats
        assert "fault(s) injected" in result.summary()


class TestBatchedDegradation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulted_rounds_fall_back_to_paged(self, rmat_db, machine,
                                               seed):
        clean = _run(rmat_db, machine, PageRankKernel(iterations=3),
                     execution="batched")
        faulted = _run(rmat_db, machine, PageRankKernel(iterations=3),
                       execution="batched", faults=RECOVERABLE,
                       fault_seed=seed)
        _assert_same_values(faulted, clean)
        assert faulted.fault_stats["fallback_rounds"] > 0
        assert faulted.elapsed_seconds > clean.elapsed_seconds


class TestDeviceLoss:
    def test_performance_strategy_survives_a_dead_gpu(self, rmat_db,
                                                      machine):
        clean = _run(rmat_db, machine, PageRankKernel(iterations=3),
                     strategy="performance")
        faulted = _run(rmat_db, machine, PageRankKernel(iterations=3),
                       strategy="performance",
                       faults=FaultPlan(gpu_loss={1: 0.0}))
        _assert_same_values(faulted, clean)
        assert faulted.fault_stats["dead_gpus"] == [1]
        assert faulted.fault_stats["devices_lost"] == 1

    def test_scalability_strategy_cannot_survive_gpu_loss(self, rmat_db,
                                                          machine):
        engine = GTSEngine(rmat_db, machine, strategy="scalability",
                           faults=FaultPlan(gpu_loss={1: 0.0}))
        with pytest.raises(DeviceLostError) as info:
            engine.run(PageRankKernel(iterations=3))
        assert info.value.device == "gpu:1"

    def test_losing_every_gpu_is_fatal(self, rmat_db, machine):
        engine = GTSEngine(rmat_db, machine, strategy="performance",
                           faults=FaultPlan(gpu_loss={0: 0.0, 1: 0.0}))
        with pytest.raises(DeviceLostError):
            engine.run(PageRankKernel(iterations=3))

    def test_ssd_loss_is_fatal(self, rmat_db, machine):
        engine = GTSEngine(rmat_db, machine, mm_buffer_bytes=64 * KB,
                           faults=FaultPlan(ssd_loss={0: 0.0}))
        with pytest.raises(DeviceLostError) as info:
            engine.run(PageRankKernel(iterations=3))
        assert info.value.lost_at == 0.0


class TestHostCorruption:
    def test_corrupt_host_reads_recovered_bit_identically(
            self, rmat_db, machine, tmp_path):
        prefix = str(tmp_path / "db")
        save_database(rmat_db, prefix)
        clean = _run(FileBackedDatabase(prefix), machine,
                     PageRankKernel(iterations=3))
        faulted_db = FileBackedDatabase(prefix)
        plan = FaultPlan(host_corrupt_reads={0: 1, 2: 1})
        faulted = _run(faulted_db, machine, PageRankKernel(iterations=3),
                       faults=plan)
        _assert_same_values(faulted, clean)
        assert faulted.fault_stats["host_corrupt_faults"] == 2
        assert faulted.fault_stats["integrity_retries"] == 2
        # The engine detaches its injector after the run.
        assert faulted_db.fault_injector is None


CRASH_SCRIPT = textwrap.dedent("""\
    import os
    import sys

    from repro.dynamic import compact, open_dynamic_database

    prefix = sys.argv[1]
    db = open_dynamic_database(prefix)

    def exploding_replace(src, dst):
        os._exit(17)  # power cut mid-save: no replace ever lands

    os.replace = exploding_replace
    compact(db, save_prefix=prefix)
    os._exit(0)  # unreachable
""")


class TestCrashConsistency:
    def test_crash_during_compaction_save_recovers_via_wal(
            self, tmp_path, small_config):
        vids = np.arange(5)
        graph = Graph.from_edges(6, vids, vids + 1)
        prefix = str(tmp_path / "crash")
        save_database(build_database(graph, small_config), prefix)
        db = open_dynamic_database(prefix)
        db.apply(UpdateBatch().insert_edge(0, 3))
        db.apply(UpdateBatch().add_vertices(1).insert_edge(6, 0))
        del db

        script = tmp_path / "crash_compact.py"
        script.write_text(CRASH_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "src"),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        proc = subprocess.run([sys.executable, str(script), prefix],
                              env=env, capture_output=True, text=True)
        assert proc.returncode == 17, proc.stderr

        # The kill landed before any rename: base files and WAL are the
        # pre-compaction ones and the epoch guard replays the log.
        with open(prefix + ".meta.json") as handle:
            assert json.load(handle).get("wal_epoch", 0) == 0
        recovered = open_dynamic_database(prefix)
        assert 3 in recovered.effective_neighbors(0)
        assert list(recovered.effective_neighbors(6)) == [0]
        assert recovered.num_vertices == 7
        recovered.validate()


# ---------------------------------------------------------------------------
# Snapshot-isolated live updates (MVCC) under concurrency and crashes
# ---------------------------------------------------------------------------

CRASH_RECLAIM_SCRIPT = textwrap.dedent("""\
    import os
    import sys

    from repro.dynamic import (UpdateBatch, compact,
                               open_dynamic_database)

    prefix = sys.argv[1]
    db = open_dynamic_database(prefix)
    db.apply(UpdateBatch().insert_edge(0, 3))    # v1
    snap = db.pin()                              # reader pins v1
    db.apply(UpdateBatch().insert_edge(0, 4))    # v2 (head)

    real_replace = os.replace
    landed = []

    def crashing_replace(src, dst):
        real_replace(src, dst)
        landed.append(dst)
        if len(landed) == 2:
            # Both base files landed durably, but the process dies
            # before the WAL reset and before version reclamation —
            # exactly the crash-during-reclaim window, with a live pin.
            if sorted(snap.effective_neighbors(0)) != [1, 3]:
                os._exit(18)  # pinned view corrupted pre-crash
            os._exit(17)

    os.replace = crashing_replace
    compact(db, save_prefix=prefix)
    os._exit(0)  # unreachable
""")


class TestCrashDuringReclaim:
    def test_recovery_serves_post_commit_state_and_fresh_pins(
            self, tmp_path, small_config):
        """Crash after the compacted base lands but before the WAL
        reset/reclamation finishes, while a reader pins an old version.
        Pins are in-memory, so recovery owes the dead process nothing:
        the epoch guard discards the stale WAL, the reopened database
        serves the post-commit (compacted) state, and fresh pins
        isolate correctly against post-recovery commits."""
        vids = np.arange(5)
        graph = Graph.from_edges(6, vids, vids + 1)
        prefix = str(tmp_path / "reclaim")
        save_database(build_database(graph, small_config), prefix)

        script = tmp_path / "crash_reclaim.py"
        script.write_text(CRASH_RECLAIM_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "src"),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        proc = subprocess.run([sys.executable, str(script), prefix],
                              env=env, capture_output=True, text=True)
        assert proc.returncode == 17, proc.stderr

        # The compacted base (epoch 1) is durable; the stale epoch-0
        # WAL must be discarded, not replayed over it.
        with open(prefix + ".meta.json") as handle:
            assert json.load(handle).get("wal_epoch", 0) == 1
        recovered = open_dynamic_database(prefix)
        assert sorted(recovered.effective_neighbors(0)) == [1, 3, 4]
        assert recovered.topology_version == 0
        assert recovered.mvcc_stats()["pinned_snapshots"] == 0

        # Post-recovery MVCC still isolates: a fresh pin survives a
        # fresh commit untouched.
        snap = recovered.pin()
        recovered.apply(UpdateBatch().insert_edge(0, 5))
        assert sorted(snap.effective_neighbors(0)) == [1, 3, 4]
        assert 5 in recovered.effective_neighbors(0)
        snap.release()
        recovered.validate()


#: Vertices in the property-test line graph (kept tiny: each hypothesis
#: example spins up a live service and replays references serially).
_PROP_V = 8


@st.composite
def _live_update_plan(draw):
    """Batches + reader mix + writer pacing for one interleaving.

    Batches stay valid under serial replay by construction: deletes
    only target initial line edges not yet deleted, inserts may
    reference vertices added by *earlier* ops (the apply path processes
    ops in order).
    """
    num_batches = draw(st.integers(1, 3))
    remaining = [(i, i + 1) for i in range(_PROP_V - 1)]
    extra = 0
    batches = []
    for _ in range(num_batches):
        batch = UpdateBatch()
        for _ in range(draw(st.integers(1, 4))):
            kind = draw(st.sampled_from(
                ("ins", "ins", "ins", "del", "vtx")))
            if kind == "del" and remaining:
                index = draw(st.integers(0, len(remaining) - 1))
                u, v = remaining.pop(index)
                batch.delete_edge(u, v)
            elif kind == "vtx":
                batch.add_vertices(1)
                extra += 1
            else:
                total = _PROP_V + extra
                u = draw(st.integers(0, total - 1))
                v = draw(st.integers(0, total - 1))
                if u == v:
                    v = (v + 1) % total
                batch.insert_edge(u, v)
        batches.append(batch)
    readers = draw(st.lists(
        st.tuples(st.sampled_from(("bfs", "pagerank")),
                  st.booleans(),          # inject recoverable faults?
                  st.integers(0, 3)),     # fault seed
        min_size=1, max_size=3))
    delays = draw(st.lists(st.sampled_from((0.0, 0.001, 0.005)),
                           min_size=num_batches, max_size=num_batches))
    return batches, readers, delays


def _reference_at(graph, config, batches, version, cache):
    """The serial-replay database at ``version`` (memoised)."""
    if version not in cache:
        db = DynamicGraphDatabase(build_database(graph, config))
        for batch in batches[:version]:
            db.apply(batch)
        cache[version] = db
    return cache[version]


def _kernel_for(algorithm):
    return (BFSKernel(0) if algorithm == "bfs"
            else PageRankKernel(iterations=2))


class TestConcurrentMutationProperty:
    """The MVCC serializability property: under ANY interleaving of
    concurrent queries and update batches — including fault-injecting
    queries and WAL crash replay — every query's result is bit-identical
    to a serial run against the topology at its pinned version."""

    @settings(max_examples=8, deadline=None)
    @given(plan=_live_update_plan())
    def test_any_interleaving_matches_serial_replay(self, plan,
                                                    small_config,
                                                    machine):
        from repro.service import GraphService
        batches, readers, delays = plan
        vids = np.arange(_PROP_V - 1)
        graph = Graph.from_edges(_PROP_V, vids, vids + 1)
        tmpdir = tempfile.mkdtemp(prefix="gts-live-")
        try:
            prefix = os.path.join(tmpdir, "g")
            save_database(build_database(graph, small_config), prefix)
            service = GraphService(max_in_flight=4)
            service.add_database("g", prefix=prefix)
            results, errors = [], []

            def run_reader(algorithm, faulted, seed):
                try:
                    kwargs = {"params": {"start": 0,
                                         "iterations": 2}}
                    if faulted:
                        kwargs["faults"] = RECOVERABLE
                        kwargs["fault_seed"] = seed
                    results.append(
                        (service.query("g", algorithm, **kwargs),
                         algorithm, faulted))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=run_reader, args=spec)
                       for spec in readers]
            for thread in threads:
                thread.start()
            import time as _t
            for batch, delay in zip(batches, delays):
                if delay:
                    _t.sleep(delay)
                service.update("g", batch)
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            service.remove_database("g")
            service.drain()

            # Per-query: bit-identical to a serial run at the version
            # the query pinned.  Faulted (exclusive) queries recover to
            # identical *values*; they book extra simulated time.
            reference_dbs = {}
            for result, algorithm, faulted in results:
                version = result.snapshot_version
                assert 0 <= version <= len(batches)
                ref_db = _reference_at(graph, small_config, batches,
                                       version, reference_dbs)
                expected = GTSEngine(ref_db, machine).run(
                    _kernel_for(algorithm))
                for key in expected.values:
                    np.testing.assert_array_equal(
                        result.values[key], expected.values[key],
                        err_msg="%s@v%d" % (algorithm, version))
                if not faulted:
                    assert (result.elapsed_seconds
                            == expected.elapsed_seconds), \
                        "%s@v%d" % (algorithm, version)

            # Crash replay: a fresh open recovers the full batch
            # sequence from the WAL and matches the serial replay.
            final = _reference_at(graph, small_config, batches,
                                  len(batches), reference_dbs)
            recovered = open_dynamic_database(prefix)
            assert recovered.num_vertices == final.num_vertices
            assert recovered.num_edges == final.num_edges
            for vid in range(recovered.num_vertices):
                np.testing.assert_array_equal(
                    np.sort(recovered.effective_neighbors(vid)),
                    np.sort(final.effective_neighbors(vid)),
                    err_msg="vertex %d" % vid)
            recovered.validate()
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)
