"""Write-ahead log: framing, durability, torn tails, corruption."""

import os

import pytest

from repro.dynamic import UpdateBatch, WriteAheadLog, parse_batch_file
from repro.dynamic.wal import WAL_HEADER_BYTES, WAL_MAGIC
from repro.errors import UpdateError, WALError


def _sample_batches():
    return [
        UpdateBatch().insert_edge(0, 1).insert_edge(1, 2, weight=2.5),
        UpdateBatch().delete_edge(0, 1),
        UpdateBatch().add_vertices(3).insert_edge(5, 0),
    ]


class TestUpdateBatch:
    def test_op_accounting(self):
        batch = (UpdateBatch().insert_edge(0, 1).delete_edge(2, 3)
                 .add_vertices(4).insert_edge(1, 0))
        assert batch.num_inserts == 2
        assert batch.num_deletes == 1
        assert batch.num_new_vertices == 4
        assert batch.has_deletes
        assert len(batch) == 4
        assert batch.touched_vertices() == [0, 1, 2, 3]

    def test_round_trips_through_dict(self):
        for batch in _sample_batches():
            clone = UpdateBatch.from_dict(batch.to_dict())
            assert clone.ops == batch.ops

    def test_rejects_negative_ids_and_bad_counts(self):
        with pytest.raises(UpdateError):
            UpdateBatch().insert_edge(-1, 0)
        with pytest.raises(UpdateError):
            UpdateBatch().delete_edge(0, -2)
        with pytest.raises(UpdateError):
            UpdateBatch().add_vertices(0)

    def test_from_dict_rejects_malformed_ops(self):
        with pytest.raises(UpdateError):
            UpdateBatch.from_dict({"ops": [["?", 1, 2]]})
        with pytest.raises(UpdateError):
            UpdateBatch.from_dict({"ops": [["+", 1]]})

    def test_parse_batch_file(self, tmp_path):
        path = tmp_path / "batch.txt"
        path.write_text(
            "# comment\n\nadd 1 2\nadd 3 4 2.5\ndel 1 2\nvertex\nvertex 3\n")
        batch = parse_batch_file(str(path))
        assert batch.num_inserts == 2
        assert batch.num_deletes == 1
        assert batch.num_new_vertices == 4
        assert batch.ops[1] == ("+", 3, 4, 2.5)

    def test_parse_batch_file_reports_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("add 1 2\nbogus line\n")
        with pytest.raises(UpdateError, match=r":2:"):
            parse_batch_file(str(path))


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        batches = _sample_batches()
        lsns = [wal.append(b) for b in batches]
        assert lsns == [0, 1, 2]

        report = WriteAheadLog(path).replay()
        assert report.num_batches == 3
        assert not report.truncated
        assert report.torn_bytes == 0
        for original, replayed in zip(batches, report):
            assert replayed.ops == original.ops

    def test_creates_file_with_magic_and_epoch(self, tmp_path):
        path = str(tmp_path / "log.wal")
        WriteAheadLog(path, epoch=7)
        data = open(path, "rb").read()
        assert data[:len(WAL_MAGIC)] == WAL_MAGIC
        assert len(data) == WAL_HEADER_BYTES
        assert WriteAheadLog(path).epoch == 7

    def test_epoch_param_ignored_for_existing_file(self, tmp_path):
        path = str(tmp_path / "log.wal")
        WriteAheadLog(path, epoch=3)
        # Reopening reads the header's epoch, not the constructor's.
        assert WriteAheadLog(path, epoch=99).epoch == 3

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.bin"
        path.write_bytes(b"NOTAWAL!" + b"x" * 16)
        with pytest.raises(WALError, match="magic"):
            WriteAheadLog(str(path))

    @pytest.mark.parametrize("chop", [1, 3, 7])
    def test_torn_tail_recovers_prefix(self, tmp_path, chop):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        for batch in _sample_batches():
            wal.append(batch)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - chop)

        report = WriteAheadLog(path).replay(repair=True)
        assert report.num_batches == 2
        assert report.truncated
        # After repair, the file ends exactly at the last good record.
        assert os.path.getsize(path) == report.good_bytes
        clean = WriteAheadLog(path).replay()
        assert clean.num_batches == 2
        assert clean.torn_bytes == 0

    def test_append_after_repair_continues_cleanly(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.append(UpdateBatch().insert_edge(0, 1))
        wal.append(UpdateBatch().insert_edge(1, 2))
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 2)
        WriteAheadLog(path).replay(repair=True)

        fresh = WriteAheadLog(path)
        fresh.append(UpdateBatch().insert_edge(2, 3))
        batches = list(WriteAheadLog(path).replay())
        assert [b.ops for b in batches] == [
            [("+", 0, 1, None)], [("+", 2, 3, None)]]

    def test_mid_log_corruption_raises(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        for batch in _sample_batches():
            wal.append(batch)
        # Flip a payload byte of the FIRST record: checksum mismatch
        # with intact data after it is corruption, not a torn tail.
        with open(path, "r+b") as handle:
            handle.seek(WAL_HEADER_BYTES + 8 + 2)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WALError, match="checksum"):
            WriteAheadLog(path).replay()

    def test_replay_without_repair_leaves_file(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.append(UpdateBatch().insert_edge(0, 1))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 1)
        report = WriteAheadLog(path).replay(repair=False)
        assert report.num_batches == 0
        assert not report.truncated
        assert os.path.getsize(path) == size - 1  # untouched

    def test_reset_empties_log(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.append(UpdateBatch().insert_edge(0, 1))
        wal.reset()
        assert os.path.getsize(path) == WAL_HEADER_BYTES
        assert WriteAheadLog(path).replay().num_batches == 0
        assert WriteAheadLog(path).epoch == 0

    def test_reset_stamps_new_epoch(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.append(UpdateBatch().insert_edge(0, 1))
        wal.reset(epoch=5)
        assert wal.epoch == 5
        reopened = WriteAheadLog(path)
        assert reopened.epoch == 5
        assert reopened.replay().num_batches == 0

    def test_instants_reach_recorder(self, tmp_path):
        from repro.obs import TraceRecorder
        recorder = TraceRecorder()
        wal = WriteAheadLog(str(tmp_path / "log.wal"), recorder=recorder)
        wal.append(UpdateBatch().insert_edge(0, 1))
        wal.replay()
        wal.reset()
        counts = recorder.counts()
        assert counts["wal_append"] == 1
        assert counts["wal_replay"] == 1
        assert counts["wal_reset"] == 1
        assert all(e.category == "dynamic" for e in recorder)
