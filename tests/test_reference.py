"""Tests for the reference algorithms, cross-checked against NetworkX."""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.baselines import reference
from repro.graphgen import generate_erdos_renyi, generate_rmat


@pytest.fixture(scope="module")
def graph():
    return generate_rmat(8, edge_factor=8, seed=17)


@pytest.fixture(scope="module")
def nx_graph(graph):
    g = networkx.MultiDiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    sources, targets = graph.edge_list()
    g.add_edges_from(zip(sources.tolist(), targets.tolist()))
    return g


@pytest.fixture(scope="module")
def start(graph):
    return int(np.argmax(graph.out_degrees()))


class TestBFSAgainstNetworkX:
    def test_levels(self, graph, nx_graph, start):
        ours = reference.bfs_levels(graph, start)
        theirs = networkx.single_source_shortest_path_length(
            nx_graph, start)
        for v in range(graph.num_vertices):
            if v in theirs:
                assert ours[v] == theirs[v]
            else:
                assert ours[v] == -1


class TestPageRankAgainstNetworkX:
    def test_converged_values_close(self, graph, nx_graph):
        """Run many iterations and compare against NetworkX's fixpoint.

        NetworkX redistributes dangling mass while our kernels (and the
        paper's) let it leak, so compare after renormalising."""
        ours = reference.pagerank(graph, iterations=100)
        simple = networkx.DiGraph(nx_graph)
        theirs_dict = networkx.pagerank(simple, alpha=0.85, max_iter=200)
        theirs = np.asarray(
            [theirs_dict[v] for v in range(graph.num_vertices)])
        # Parallel edges matter for rank flow: only compare when the
        # multigraph had no duplicates collapsing.  Rank ordering of the
        # top vertices is robust either way.
        top_ours = set(np.argsort(ours)[-5:])
        top_theirs = set(np.argsort(theirs)[-5:])
        assert len(top_ours & top_theirs) >= 3


class TestSSSPAgainstNetworkX:
    def test_weighted_distances(self, start):
        graph = generate_erdos_renyi(200, 5, seed=3).with_random_weights(
            seed=4)
        g = networkx.DiGraph()
        g.add_nodes_from(range(graph.num_vertices))
        sources, targets = graph.edge_list()
        for s, t, w in zip(sources, targets, graph.weights):
            # Keep the minimum-weight parallel edge, as Dijkstra would.
            if g.has_edge(int(s), int(t)):
                g[int(s)][int(t)]["weight"] = min(
                    g[int(s)][int(t)]["weight"], float(w))
            else:
                g.add_edge(int(s), int(t), weight=float(w))
        ours = reference.sssp_distances(graph, 0)
        theirs = networkx.single_source_dijkstra_path_length(
            g, 0, weight="weight")
        for v in range(graph.num_vertices):
            if v in theirs:
                assert ours[v] == pytest.approx(theirs[v], rel=1e-5)
            else:
                assert np.isinf(ours[v])


class TestWCCAgainstNetworkX:
    def test_component_partition(self, graph, nx_graph):
        ours = reference.weakly_connected_components(graph)
        theirs = list(networkx.weakly_connected_components(
            networkx.DiGraph(nx_graph)))
        for component in theirs:
            labels = {int(ours[v]) for v in component}
            assert len(labels) == 1, "component split"
            assert min(component) == labels.pop(), "label is min member"


class TestBCAgainstNetworkX:
    def test_single_source_dependencies(self, start):
        from repro.graphgen import Graph
        raw = generate_erdos_renyi(60, 3, seed=9)
        # Deduplicate: NetworkX's DiGraph collapses parallel edges, and
        # path counts must agree.
        graph = Graph.from_edges(raw.num_vertices, *raw.edge_list(),
                                 deduplicate=True)
        g = networkx.DiGraph()
        g.add_nodes_from(range(graph.num_vertices))
        sources, targets = graph.edge_list()
        g.add_edges_from(
            (int(s), int(t)) for s, t in zip(sources, targets))
        source = 0
        ours = reference.betweenness_centrality(graph, (source,))
        theirs = networkx.betweenness_centrality_subset(
            g, sources=[source], targets=list(g.nodes), normalized=False)
        for v in range(graph.num_vertices):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9)


class TestRWRProperties:
    def test_scores_sum_to_at_most_one(self, graph):
        scores = reference.random_walk_with_restart(graph, 0, iterations=20)
        assert 0 < scores.sum() <= 1.0 + 1e-9

    def test_query_vertex_has_high_score(self, graph, start):
        scores = reference.random_walk_with_restart(
            graph, start, iterations=20)
        assert scores[start] == scores.max()


class TestDegreeCounts:
    def test_match_graph_methods(self, graph):
        out_deg, in_deg = reference.degree_counts(graph)
        assert np.array_equal(out_deg, graph.out_degrees())
        assert np.array_equal(in_deg, graph.in_degrees())
