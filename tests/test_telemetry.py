"""Request-telemetry tests (:mod:`repro.obs.telemetry`).

The load-bearing properties:

* **disabled path is free** — a service built without telemetry never
  reads the telemetry clock (proved by counting, the HostProfiler
  idiom), and results are bit-identical with telemetry on or off;
* **span trees conserve time** — child spans sum to no more than the
  parent's wall time and stay inside its bounds;
* **/metrics is byte-deterministic** — the same stats snapshot renders
  identical exposition bytes regardless of dict construction order,
  and the rendering validates against the format grammar;
* **the slow-query ring is bounded** — eviction keeps the newest
  records within capacity, across restarts;
* **query_id propagates** HTTP → service → RunResult → trace record.
"""

import io
import json
import os
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

import repro.obs.telemetry as telemetry_module
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineError,
    ShutdownError,
)
from repro.format import PageFormatConfig, build_database
from repro.format.io import FileBackedDatabase, save_database
from repro.graphgen import generate_rmat
from repro.obs.exporters import render_prometheus, validate_prometheus_text
from repro.obs.telemetry import (
    RequestTrace,
    RollingWindow,
    ServiceTelemetry,
    SlowQueryRing,
    StructuredLogger,
    TelemetryConfig,
    load_ring,
    render_service_metrics,
    summarize_requests,
)
from repro.service import GraphService, ServiceClient, make_server
from repro.units import KB

POOL_PAGES = 8


@pytest.fixture(scope="module")
def db_prefix(tmp_path_factory):
    graph = generate_rmat(9, edge_factor=8, seed=3)
    db = build_database(graph,
                        PageFormatConfig(2, 2, 1 * KB, weight_bytes=4))
    prefix = str(tmp_path_factory.mktemp("telemetry") / "g")
    save_database(db, prefix)
    return prefix


def make_service(db_prefix, telemetry=None, **kwargs):
    service = GraphService(max_in_flight=2, telemetry=telemetry,
                           **kwargs)
    service.add_database(
        "g", db=FileBackedDatabase(db_prefix, pool_pages=POOL_PAGES))
    return service


# ----------------------------------------------------------------------
# Pay-for-use: the disabled path reads no telemetry clock
# ----------------------------------------------------------------------
class TestDisabledPathIsFree:
    def test_no_clock_reads_without_telemetry(self, db_prefix,
                                              monkeypatch):
        calls = {"n": 0}
        real = telemetry_module.perf_counter_ns

        def counting():
            calls["n"] += 1
            return real()

        monkeypatch.setattr(telemetry_module, "perf_counter_ns",
                            counting)
        service = make_service(db_prefix)
        assert service.telemetry is None
        result = service.query("g", "bfs", params={"start": 0})
        service.stats()
        service.drain()
        assert result.num_rounds > 0
        assert calls["n"] == 0, (
            "telemetry=None service read the telemetry clock %d "
            "time(s)" % calls["n"])

    def test_enabled_path_does_read_the_clock(self, db_prefix,
                                              monkeypatch):
        calls = {"n": 0}
        real = telemetry_module.perf_counter_ns

        def counting():
            calls["n"] += 1
            return real()

        monkeypatch.setattr(telemetry_module, "perf_counter_ns",
                            counting)
        service = make_service(db_prefix, telemetry=True)
        service.query("g", "bfs", params={"start": 0})
        service.drain()
        assert calls["n"] > 0

    def test_results_bit_identical_on_off(self, db_prefix):
        off = make_service(db_prefix)
        on = make_service(db_prefix, telemetry=TelemetryConfig(
            slow_ms=0.0, sample_every=1))
        try:
            for algorithm, params in (("bfs", {"start": 0}),
                                      ("pagerank", {"iterations": 5})):
                a = off.query("g", algorithm, params=params)
                b = on.query("g", algorithm, params=params)
                assert a.elapsed_seconds == b.elapsed_seconds
                assert a.num_rounds == b.num_rounds
                assert set(a.values) == set(b.values)
                for key in a.values:
                    np.testing.assert_array_equal(a.values[key],
                                                  b.values[key])
        finally:
            off.drain()
            on.drain()


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------
class TestSpanTree:
    def test_children_conserve_parent_wall(self, db_prefix, tmp_path):
        ring_dir = str(tmp_path / "ring")
        service = make_service(db_prefix, telemetry=TelemetryConfig(
            slow_ms=0.0, ring_dir=ring_dir))
        for _ in range(3):
            service.query("g", "cc")
        service.drain()
        records = load_ring(ring_dir)
        assert len(records) == 3
        for record in records:
            root = record["span"]
            assert root["name"] == "request"
            children = root["children"]
            names = [c["name"] for c in children]
            assert names == ["admission_wait", "queue_wait",
                             "gate_acquire", "engine"]
            assert sum(c["duration_ms"] for c in children) \
                <= root["duration_ms"] + 1e-6
            for child in children:
                assert child["start_ms"] >= root["start_ms"] - 1e-6
                assert (child["start_ms"] + child["duration_ms"]
                        <= root["start_ms"] + root["duration_ms"]
                        + 1e-6)
            engine = children[-1]
            assert engine["attrs"]["rounds"] == record["rounds"] > 0
            rounds = engine["children"]
            assert len(rounds) == record["rounds"]
            assert sum(r["duration_ms"] for r in rounds) \
                <= engine["duration_ms"] + 1e-6

    def test_deadline_capture_records_error(self, db_prefix, tmp_path):
        ring_dir = str(tmp_path / "ring")
        service = make_service(db_prefix, telemetry=TelemetryConfig(
            slow_ms=1e9, ring_dir=ring_dir))
        with pytest.raises(DeadlineError):
            service.query("g", "pagerank",
                          params={"iterations": 50},
                          options={"timeout_ms": 0.0001})
        service.drain()
        records = load_ring(ring_dir)
        # slow_ms is unreachable, so only the *error* tail-captured it.
        assert len(records) == 1
        assert records[0]["status"] == "deadline"
        assert records[0]["error_type"] == "DeadlineError"

    def test_phase_accounting_and_repr(self):
        trace = RequestTrace("q1", "g", "bfs", submit_ns=1000)
        trace.add_phase("queue_wait", 1000, 3000)
        trace.add_phase("engine", 3000, 9000, rounds=2)
        trace.end_ns = 10000
        assert trace.phase_ms() == {"queue_wait": 0.002,
                                    "engine": 0.006}
        assert trace.wall_seconds == pytest.approx(9e-6)
        assert "q1" in repr(trace)


# ----------------------------------------------------------------------
# Rolling windows
# ----------------------------------------------------------------------
class TestRollingWindow:
    def test_deterministic_with_injected_clock(self):
        now = [0.0]
        window = RollingWindow(60.0, num_buckets=6,
                               clock=lambda: now[0])
        for i in range(20):
            window.observe(0.010)
            now[0] += 1.0
        snap = window.snapshot()
        assert snap["count"] == 20
        assert snap["throughput_qps"] == pytest.approx(20 / 60.0)
        # every observation sits in the same log bin; all quantiles
        # report that bin's upper edge, at or above the true value.
        assert snap["p50"] == snap["p99"] >= 0.010

    def test_old_buckets_age_out(self):
        now = [0.0]
        window = RollingWindow(60.0, num_buckets=6,
                               clock=lambda: now[0])
        window.observe(0.5)
        now[0] = 30.0
        window.observe(0.5)
        assert window.snapshot()["count"] == 2
        now[0] = 65.0  # first bucket (t=0..10) is now outside
        assert window.snapshot()["count"] == 1
        now[0] = 500.0
        snap = window.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["mean_seconds"] is None

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            RollingWindow(0.0)
        with pytest.raises(ConfigurationError):
            RollingWindow(60.0, num_buckets=0)


# ----------------------------------------------------------------------
# Slow-query ring
# ----------------------------------------------------------------------
class TestSlowQueryRing:
    def make_record(self, i):
        return {"query_id": "q%d" % i, "status": "ok", "wall_ms": 1.0,
                "database": "g", "span": {"name": "request",
                                          "children": []}}

    def test_eviction_bounds(self, tmp_path):
        ring = SlowQueryRing(str(tmp_path / "ring"), capacity=4)
        for i in range(10):
            ring.append(self.make_record(i))
        assert len(ring) == 4
        records = ring.records()
        assert [r["query_id"] for r in records] == ["q6", "q7", "q8",
                                                    "q9"]

    def test_restart_resumes_sequence(self, tmp_path):
        path = str(tmp_path / "ring")
        ring = SlowQueryRing(path, capacity=8)
        ring.append(self.make_record(0))
        reopened = SlowQueryRing(path, capacity=8)
        reopened.append(self.make_record(1))
        assert [r["query_id"] for r in reopened.records()] == ["q0",
                                                               "q1"]

    def test_query_id_sanitised_in_filename(self, tmp_path):
        ring = SlowQueryRing(str(tmp_path / "ring"), capacity=4)
        record = self.make_record(0)
        record["query_id"] = "../evil id/\\x"
        written = ring.append(record)
        assert os.path.dirname(written) == ring.directory
        assert "/.." not in os.path.basename(written)
        assert len(ring) == 1

    def test_capacity_validation_and_load_ring_errors(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SlowQueryRing(str(tmp_path / "r"), capacity=0)
        with pytest.raises(ConfigurationError):
            load_ring(str(tmp_path / "missing"))

    def test_summarize(self, tmp_path):
        records = []
        for i, (status, wall) in enumerate((("ok", 10.0),
                                            ("deadline", 30.0),
                                            ("ok", 20.0))):
            record = self.make_record(i)
            record["status"] = status
            record["wall_ms"] = wall
            record["span"]["children"] = [
                {"name": "engine", "start_ms": 0.0,
                 "duration_ms": wall / 2}]
            if status == "deadline":
                record["error_type"] = "DeadlineError"
            records.append(record)
        summary = summarize_requests(records)
        assert summary["requests"] == 3
        assert summary["by_status"] == {"ok": 2, "deadline": 1}
        assert summary["by_error_type"] == {"DeadlineError": 1}
        assert summary["wall_ms"]["p50"] == 20.0
        assert summary["phase_mean_ms"]["engine"] == pytest.approx(10.0)


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
class TestStructuredLogger:
    def test_silent_without_sink(self):
        logger = StructuredLogger("t")
        assert not logger.enabled
        logger.log("event", key="value")  # no sink: no-op, no error

    def test_json_lines_sorted_keys(self):
        stream = io.StringIO()
        logger = StructuredLogger("t", stream=stream)
        logger.log("thing_happened", zebra=1, alpha="x")
        line = stream.getvalue().strip()
        record = json.loads(line)
        assert record["event"] == "thing_happened"
        assert record["logger"] == "t"
        assert list(record) == sorted(record)

    def test_global_sink_configures_named_loggers(self):
        from repro.obs.telemetry import configure_logging, get_logger
        stream = io.StringIO()
        previous = configure_logging(stream)
        try:
            logger = get_logger("repro.test-global")
            assert logger is get_logger("repro.test-global")
            logger.log("ping")
            assert json.loads(stream.getvalue())["event"] == "ping"
        finally:
            configure_logging(previous)
        assert not logger.enabled

    def test_wal_recovery_logs_through_structured_logger(self,
                                                         tmp_path):
        from repro.dynamic import UpdateBatch, open_dynamic_database
        from repro.obs.telemetry import configure_logging
        graph = generate_rmat(6, edge_factor=4, seed=1)
        db = build_database(graph, PageFormatConfig(2, 2, 1 * KB))
        prefix = str(tmp_path / "dyn")
        save_database(db, prefix)
        dynamic = open_dynamic_database(prefix)
        dynamic.apply(UpdateBatch().insert_edge(0, 1))
        del dynamic  # "crash": base files + WAL survive
        # Tear the WAL tail to force the repair path on reopen.
        with open(prefix + ".wal", "ab") as handle:
            handle.write(b"\x01\x02\x03")
        stream = io.StringIO()
        previous = configure_logging(stream)
        try:
            open_dynamic_database(prefix)
        finally:
            configure_logging(previous)
        events = [json.loads(line) for line in
                  stream.getvalue().splitlines()]
        repaired = [e for e in events
                    if e["event"] == "wal_torn_tail_repaired"]
        assert len(repaired) == 1
        assert repaired[0]["logger"] == "repro.dynamic"
        assert repaired[0]["torn_bytes"] == 3


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheusRendering:
    def frozen_stats(self, reorder=False):
        db = {"vertices": 10, "edges": 20, "pages": 4,
              "topology_version": 1, "queries": 5,
              "shared_cache": {"hits": 9, "misses": 1,
                               "hit_rate": 0.9},
              "plan_cache": {"hits": 4, "builds": 1},
              "exclusive_queries": 0, "updates": 2,
              "gate": {"writers_waiting": 0, "readers_active": 0,
                       "writer_wait_seconds": 0.25,
                       "reader_wait_seconds": 0.125,
                       "reader_waits": 3}}
        stats = {"queue_depth": 0, "in_flight": 1, "max_in_flight": 4,
                 "max_queue": 8, "draining": False, "admitted": 7,
                 "completed": 5, "failed": 1, "rejected_admission": 1,
                 "rejected_shutdown": 0, "deadline_exceeded": 1,
                 "updates_applied": 2, "peak_in_flight": 2,
                 "peak_queued": 3,
                 "latency_seconds": {"count": 5, "p50": 0.01,
                                     "p95": 0.05, "p99": 0.09},
                 "rolling": {"1m": {"count": 3, "throughput_qps": 0.05,
                                    "p50": 0.01, "p95": 0.02,
                                    "p99": 0.02},
                             "5m": {"count": 5, "throughput_qps": 0.02,
                                    "p50": 0.01, "p95": 0.05,
                                    "p99": 0.09}},
                 "telemetry": {"requests": 5, "sampled": 1, "slow": 2,
                               "tail_captured": 2, "rejections": 1,
                               "ring": {"size": 2}},
                 "databases": {"g": db}}
        if reorder:
            # Same content, different insertion order everywhere a dict
            # order could leak into the rendering.
            stats = json.loads(json.dumps(stats))
            stats["databases"] = dict(
                reversed(list(stats["databases"].items())))
            stats["rolling"] = dict(
                reversed(list(stats["rolling"].items())))
            stats["latency_seconds"] = dict(
                reversed(list(stats["latency_seconds"].items())))
        return stats

    def test_byte_deterministic_given_frozen_stats(self):
        text_a = render_service_metrics(self.frozen_stats())
        text_b = render_service_metrics(self.frozen_stats(reorder=True))
        assert text_a == text_b
        assert text_a.encode("utf-8") == text_b.encode("utf-8")

    def test_rendering_validates_and_carries_series(self):
        text = render_service_metrics(self.frozen_stats())
        parsed = validate_prometheus_text(text)
        assert parsed["gts_service_completed_total"]["samples"] == [
            ({}, 5.0)]
        rejected = dict(
            (labels["reason"], value) for labels, value in
            parsed["gts_service_rejected_total"]["samples"])
        assert rejected == {"admission": 1.0, "shutdown": 0.0}
        windows = parsed["gts_service_window_throughput_qps"]["samples"]
        assert {labels["window"] for labels, _ in windows} == {"1m",
                                                               "5m"}
        db_queries = parsed["gts_db_queries_total"]["samples"]
        assert db_queries == [({"database": "g"}, 5.0)]
        assert parsed["gts_db_gate_reader_wait_seconds_total"][
            "samples"] == [({"database": "g"}, 0.125)]

    def test_label_escaping_round_trips(self):
        hostile = 'a"b\\c\nd'
        text = render_prometheus([
            {"name": "gts_t", "type": "gauge", "help": "h",
             "samples": [({"database": hostile}, 1.0)]}])
        parsed = validate_prometheus_text(text)
        assert parsed["gts_t"]["samples"] == [({"database": hostile},
                                               1.0)]

    def test_malformed_text_rejected(self):
        for bad in ("gts_x 1\n",                      # sample before TYPE
                    "# TYPE gts_x wibble\ngts_x 1\n",  # bad type
                    "# TYPE gts_x gauge\ngts_x one\n",  # bad value
                    "# TYPE gts_x gauge\ngts_x{a=b} 1\n"):  # unquoted
            with pytest.raises(ConfigurationError):
                validate_prometheus_text(bad)

    def test_metrics_text_without_telemetry(self, db_prefix):
        service = make_service(db_prefix)
        service.query("g", "bfs", params={"start": 0})
        service.drain()
        parsed = validate_prometheus_text(service.metrics_text())
        assert "gts_service_completed_total" in parsed
        assert "gts_service_window_latency_seconds" not in parsed


# ----------------------------------------------------------------------
# Latency quantile edge cases (satellite)
# ----------------------------------------------------------------------
class TestLatencyQuantiles:
    def test_empty_service_null_shaped_block(self):
        service = GraphService(max_in_flight=1)
        latency = service.stats()["latency_seconds"]
        assert latency == {"count": 0, "p50": None, "p95": None,
                           "p99": None}
        service.drain()

    def test_single_sample(self):
        service = GraphService(max_in_flight=1)
        service._wall_latencies = [0.25]
        latency = service._latency_quantiles()
        assert latency == {"count": 1, "p50": 0.25, "p95": 0.25,
                           "p99": 0.25}
        service.drain()

    def test_two_samples_interpolate(self):
        service = GraphService(max_in_flight=1)
        service._wall_latencies = [1.0, 3.0]
        latency = service._latency_quantiles()
        assert latency["count"] == 2
        assert latency["p50"] == pytest.approx(2.0)
        assert latency["p95"] == pytest.approx(2.9)
        assert latency["p99"] == pytest.approx(2.98)
        service.drain()


# ----------------------------------------------------------------------
# HTTP propagation + serialize span
# ----------------------------------------------------------------------
class TestHTTPPropagation:
    @pytest.fixture()
    def served(self, db_prefix, tmp_path):
        ring_dir = str(tmp_path / "ring")
        service = make_service(db_prefix, telemetry=TelemetryConfig(
            slow_ms=0.0, ring_dir=ring_dir))
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        base = "http://127.0.0.1:%d" % server.server_address[1]
        yield service, base, ring_dir
        server.shutdown()
        server.server_close()
        service.drain()

    def post(self, base, payload):
        request = urllib.request.Request(
            base + "/query", data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as response:
            return (json.loads(response.read()),
                    response.headers.get("X-Query-Id"))

    def test_query_id_propagates_end_to_end(self, served):
        service, base, ring_dir = served
        body, header = self.post(base, {
            "database": "g", "algorithm": "bfs",
            "params": {"start": 0}, "query_id": "corr-42"})
        assert body["query_id"] == "corr-42"
        assert header == "corr-42"
        # Server-assigned ids propagate too.
        body, header = self.post(base, {"database": "g",
                                        "algorithm": "bfs",
                                        "params": {"start": 0}})
        assert body["query_id"] == header is not None
        service.drain()
        records = load_ring(ring_dir)
        by_id = {r["query_id"]: r for r in records}
        assert "corr-42" in by_id
        # The HTTP path appends the serialize span before completion.
        names = [c["name"] for c in by_id["corr-42"]["span"]["children"]]
        assert names[-1] == "serialize"

    def test_metrics_endpoint(self, served):
        service, base, _ = served
        self.post(base, {"database": "g", "algorithm": "bfs",
                         "params": {"start": 0}})
        with urllib.request.urlopen(base + "/metrics",
                                    timeout=30) as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            parsed = validate_prometheus_text(
                response.read().decode("utf-8"))
        assert parsed["gts_service_completed_total"]["samples"][0][1] \
            >= 1.0
        assert "gts_service_window_latency_seconds" in parsed

    def test_deadline_body_carries_query_id(self, served):
        service, base, ring_dir = served
        request = urllib.request.Request(
            base + "/query",
            data=json.dumps({
                "database": "g", "algorithm": "pagerank",
                "params": {"iterations": 50},
                "options": {"timeout_ms": 0.0001},
                "query_id": "doomed"}).encode(),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 504
        body = json.loads(info.value.read())
        assert body["query_id"] == "doomed"
        service.drain()
        records = load_ring(ring_dir)
        doomed = [r for r in records if r["query_id"] == "doomed"]
        assert doomed and doomed[0]["status"] == "deadline"


# ----------------------------------------------------------------------
# Client retry (satellite)
# ----------------------------------------------------------------------
class _StubHandler(BaseHTTPRequestHandler):
    """Scripted responses: pops the next (status, headers, body)."""

    script = []
    seen = []

    def log_message(self, *args):
        pass

    def do_POST(self):
        length = int(self.headers.get("Content-Length") or 0)
        type(self).seen.append(json.loads(self.rfile.read(length)))
        status, headers, body = type(self).script.pop(0)
        payload = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for key, value in headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(payload)


@pytest.fixture()
def stub_server():
    handler = type("Stub", (_StubHandler,), {"script": [], "seen": []})
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield handler, "http://127.0.0.1:%d" % server.server_address[1]
    server.shutdown()
    server.server_close()


BUSY = {"error": "busy", "type": "AdmissionError", "queue_depth": 1,
        "in_flight": 1, "max_in_flight": 1, "max_queue": 0}


class TestClientRetry:
    def test_retries_429_honouring_retry_after(self, stub_server):
        handler, base = stub_server
        handler.script[:] = [
            (429, {"Retry-After": "2"}, BUSY),
            (429, {"Retry-After": "2"}, BUSY),
            (200, {}, {"algorithm": "bfs", "query_id": "q0"}),
        ]
        client = ServiceClient(base, retries=3, backoff_cap=5.0)
        sleeps = []
        client._sleep = sleeps.append
        result = client.query("g", "bfs")
        assert result["query_id"] == "q0"
        assert len(handler.seen) == 3
        # Retry-After=2 with doubling, capped at 5: 2, then 4.
        assert sleeps == [2.0, 4.0]

    def test_backoff_is_capped(self, stub_server):
        handler, base = stub_server
        handler.script[:] = [(429, {"Retry-After": "4"}, BUSY)] * 3 + [
            (200, {}, {"ok": True})]
        client = ServiceClient(base, retries=3, backoff_cap=5.0)
        sleeps = []
        client._sleep = sleeps.append
        client.query("g", "bfs")
        assert sleeps == [4.0, 5.0, 5.0]

    def test_retries_exhausted_raises_typed(self, stub_server):
        handler, base = stub_server
        handler.script[:] = [(429, {"Retry-After": "1"}, BUSY)] * 2
        client = ServiceClient(base, retries=1)
        client._sleep = lambda _s: None
        with pytest.raises(AdmissionError):
            client.query("g", "bfs")
        assert len(handler.seen) == 2

    def test_no_retry_on_503_draining(self, stub_server):
        handler, base = stub_server
        handler.script[:] = [
            (503, {}, {"error": "draining", "type": "ShutdownError"})]
        client = ServiceClient(base, retries=5)
        client._sleep = lambda _s: pytest.fail("slept on 503")
        with pytest.raises(ShutdownError):
            client.query("g", "bfs")
        assert len(handler.seen) == 1

    def test_default_is_fail_fast(self, stub_server):
        handler, base = stub_server
        handler.script[:] = [(429, {"Retry-After": "1"}, BUSY)]
        client = ServiceClient(base)
        with pytest.raises(AdmissionError):
            client.query("g", "bfs")
        assert len(handler.seen) == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceClient("http://x", retries=-1)
        with pytest.raises(ConfigurationError):
            ServiceClient("http://x", backoff_cap=0.0)


# ----------------------------------------------------------------------
# Telemetry front-end behaviours
# ----------------------------------------------------------------------
class TestServiceTelemetry:
    def test_head_sampling_cadence(self):
        tm = ServiceTelemetry(TelemetryConfig(sample_every=3))

        class Req:
            database = "g"
            algorithm = "bfs"

            def __init__(self, i):
                self.query_id = "q%d" % i

        sampled = [tm.new_trace(Req(i)).sampled for i in range(9)]
        assert sampled == [False, False, True] * 3

    def test_complete_is_idempotent(self, tmp_path):
        tm = ServiceTelemetry(TelemetryConfig(
            slow_ms=0.0, ring_dir=str(tmp_path / "ring")))

        class Req:
            database = "g"
            algorithm = "bfs"
            query_id = "q0"

        trace = tm.new_trace(Req())
        trace.set_status("ok")
        tm.complete(trace)
        tm.complete(trace)
        assert tm.requests == 1
        assert len(load_ring(str(tmp_path / "ring"))) == 1

    def test_defer_returns_none_after_completion(self):
        tm = ServiceTelemetry(TelemetryConfig())

        class Req:
            database = "g"
            algorithm = "bfs"
            query_id = "q0"

        trace = tm.new_trace(Req())
        assert tm.defer("q0") is trace
        trace.set_status("ok")
        tm.complete(trace)
        assert tm.defer("q0") is None
        assert tm.defer("missing") is None

    def test_rejections_recorded(self, db_prefix):
        stream = io.StringIO()
        service = make_service(
            db_prefix, telemetry=TelemetryConfig(log_stream=stream),
            max_queue=0)
        service.drain(wait=True)
        with pytest.raises(ShutdownError):
            service.query("g", "bfs", params={"start": 0})
        assert service.telemetry.rejections == 1
        events = [json.loads(line) for line in
                  stream.getvalue().splitlines()]
        assert events[-1]["event"] == "request_rejected"
        assert events[-1]["error_type"] == "ShutdownError"

    def test_bad_telemetry_argument_rejected(self):
        with pytest.raises(ConfigurationError):
            GraphService(telemetry="yes")
        with pytest.raises(ConfigurationError):
            TelemetryConfig(slow_ms=-1.0)
        with pytest.raises(ConfigurationError):
            TelemetryConfig(sample_every=-1)
