"""Tests for the extended algorithm kernels of Section 3.3's list:
K-core, Neighborhood, CrossEdges and Radius estimation."""

import numpy as np
import pytest

from repro.baselines import reference
from repro.core import (
    CrossEdgesKernel,
    GTSEngine,
    KCoreKernel,
    NeighborhoodKernel,
    RadiusKernel,
)
from repro.errors import ConfigurationError
from repro.format import build_database
from repro.graphgen import generate_rmat
from repro.graphgen.random_graphs import generate_ring, generate_star


def _naive_kcore(graph, k):
    """Reference peeling on a symmetrised CSR graph."""
    degree = graph.out_degrees().astype(int).copy()
    alive = np.ones(graph.num_vertices, dtype=bool)
    changed = True
    while changed:
        removable = alive & (degree < k)
        changed = bool(removable.any())
        alive[removable] = False
        for v in np.flatnonzero(removable):
            for t in graph.neighbors(v):
                degree[t] -= 1
    return alive


@pytest.fixture(scope="module")
def sym_graph():
    return generate_rmat(9, edge_factor=8, seed=61).symmetrised()


@pytest.fixture(scope="module")
def sym_db(sym_graph, small_config):
    return build_database(sym_graph, small_config, name="sym")


class TestKCore:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_matches_naive_peeling(self, sym_graph, sym_db, machine, k):
        result = GTSEngine(sym_db, machine).run(KCoreKernel(k=k))
        assert np.array_equal(result.values["in_kcore"],
                              _naive_kcore(sym_graph, k))

    def test_core_membership_is_monotone_in_k(self, sym_db, machine):
        cores = [GTSEngine(sym_db, machine).run(
            KCoreKernel(k=k)).values["in_kcore"] for k in (2, 4, 8)]
        assert np.all(cores[1] <= cores[0])
        assert np.all(cores[2] <= cores[1])

    def test_kcore_property_holds(self, sym_graph, sym_db, machine):
        """Every member of the k-core keeps >= k in-core neighbours."""
        k = 4
        core = GTSEngine(sym_db, machine).run(
            KCoreKernel(k=k)).values["in_kcore"]
        for v in np.flatnonzero(core):
            in_core_neighbours = core[sym_graph.neighbors(v)].sum()
            assert in_core_neighbours >= k

    def test_star_has_no_two_core(self, machine, small_config):
        star = generate_star(100).symmetrised()
        db = build_database(star, small_config)
        result = GTSEngine(db, machine).run(KCoreKernel(k=2))
        assert not result.values["in_kcore"].any()

    def test_k_validated(self):
        with pytest.raises(ConfigurationError):
            KCoreKernel(k=0)


class TestNeighborhood:
    def test_matches_truncated_bfs(self, rmat_graph, rmat_db, machine):
        start = int(np.argmax(rmat_graph.out_degrees()))
        levels = reference.bfs_levels(rmat_graph, start)
        for hops in (0, 1, 2, 3):
            result = GTSEngine(rmat_db, machine).run(
                NeighborhoodKernel(query_vertex=start, hops=hops))
            expected = (levels >= 0) & (levels <= hops)
            assert np.array_equal(result.values["member"], expected)

    def test_zero_hops_is_just_the_query(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(
            NeighborhoodKernel(query_vertex=5, hops=0))
        member = result.values["member"]
        assert member[5]
        assert member.sum() == 1
        assert result.num_rounds == 0

    def test_streams_only_needed_levels(self, rmat_db, machine):
        shallow = GTSEngine(rmat_db, machine).run(
            NeighborhoodKernel(query_vertex=0, hops=1))
        deep = GTSEngine(rmat_db, machine).run(
            NeighborhoodKernel(query_vertex=0, hops=3))
        assert shallow.pages_streamed <= deep.pages_streamed
        assert shallow.num_rounds <= 1

    def test_hop_vector_matches_levels(self, rmat_graph, rmat_db, machine):
        start = int(np.argmax(rmat_graph.out_degrees()))
        result = GTSEngine(rmat_db, machine).run(
            NeighborhoodKernel(query_vertex=start, hops=2))
        hops = result.values["hop"]
        levels = reference.bfs_levels(rmat_graph, start)
        member = result.values["member"]
        assert np.array_equal(hops[member], levels[member])

    def test_hops_validated(self):
        with pytest.raises(ConfigurationError):
            NeighborhoodKernel(hops=-1)


class TestCrossEdges:
    def test_total_matches_direct_count(self, rmat_graph, rmat_db,
                                        machine):
        partition = np.arange(rmat_graph.num_vertices) % 3
        result = GTSEngine(rmat_db, machine).run(
            CrossEdgesKernel(partition))
        sources, targets = rmat_graph.edge_list()
        expected = int((partition[sources] != partition[targets]).sum())
        assert result.values["total_cross_edges"][0] == expected

    def test_per_vertex_counts_sum_to_total(self, rmat_graph, rmat_db,
                                            machine):
        partition = np.arange(rmat_graph.num_vertices) % 2
        result = GTSEngine(rmat_db, machine).run(
            CrossEdgesKernel(partition))
        assert (result.values["cross_count"].sum()
                == result.values["total_cross_edges"][0])

    def test_single_part_has_no_cross_edges(self, rmat_graph, rmat_db,
                                            machine):
        partition = np.zeros(rmat_graph.num_vertices, dtype=int)
        result = GTSEngine(rmat_db, machine).run(
            CrossEdgesKernel(partition))
        assert result.values["total_cross_edges"][0] == 0
        assert result.values["cut_fraction"][0] == 0.0

    def test_partition_length_validated(self, rmat_db, machine):
        with pytest.raises(ConfigurationError):
            GTSEngine(rmat_db, machine).run(CrossEdgesKernel([0, 1]))

    def test_single_scan(self, rmat_graph, rmat_db, machine):
        partition = np.arange(rmat_graph.num_vertices) % 2
        result = GTSEngine(rmat_db, machine).run(
            CrossEdgesKernel(partition))
        assert result.num_rounds == 1
        assert result.edges_traversed == rmat_graph.num_edges


class TestRadius:
    def test_ring_radius_hits_hop_cap(self, machine, small_config):
        """A directed ring's reachable set keeps growing each hop."""
        db = build_database(generate_ring(64), small_config)
        result = GTSEngine(db, machine).run(
            RadiusKernel(num_sketches=16, max_hops=10, seed=1))
        assert result.values["estimated_diameter"][0] == 10

    def test_rmat_radius_is_small(self, machine, small_config):
        graph = generate_rmat(10, edge_factor=16, seed=9).symmetrised()
        db = build_database(graph, small_config)
        result = GTSEngine(db, machine).run(
            RadiusKernel(num_sketches=16, max_hops=12, seed=1))
        diameter = result.values["estimated_diameter"][0]
        assert 1 <= diameter <= 8

    def test_neighbourhood_sizes_monotone(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(
            RadiusKernel(num_sketches=8, max_hops=6, seed=2))
        sizes = result.values["neighbourhood_sizes"]
        assert np.all(np.diff(sizes, axis=0) >= -1e-9)

    def test_estimate_in_calibrated_range(self):
        """FM estimate of a known set size lands within ~3x."""
        from repro.core.kernels.radius import fm_estimate
        rng = np.random.default_rng(0)
        num_sketches = 32
        true_size = 500
        geometric = rng.geometric(0.5, size=(true_size, num_sketches))
        bits = np.minimum(geometric - 1, 31).astype(np.uint32)
        sketches = np.bitwise_or.reduce(
            np.uint32(1) << bits, axis=0)
        estimate = fm_estimate(sketches[None, :])[0]
        assert true_size / 3 < estimate < true_size * 3

    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            RadiusKernel(num_sketches=0)
        with pytest.raises(ConfigurationError):
            RadiusKernel(max_hops=0)
        with pytest.raises(ConfigurationError):
            RadiusKernel(threshold=0.0)

    def test_wa_bytes_scale_with_sketches(self):
        assert RadiusKernel(num_sketches=16).wa_bytes_per_vertex \
            == 2 * RadiusKernel(num_sketches=8).wa_bytes_per_vertex
