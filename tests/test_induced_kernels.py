"""Tests for the induced-subgraph and egonet kernels."""

import numpy as np
import pytest

from repro.core import EgonetKernel, GTSEngine, InducedSubgraphKernel
from repro.errors import ConfigurationError
from repro.format import build_database
from repro.graphgen import Graph
from repro.graphgen.random_graphs import generate_star


def _direct_induced_count(graph, member):
    sources, targets = graph.edge_list()
    return int((member[sources] & member[targets]).sum())


class TestInducedSubgraph:
    def test_counts_match_direct_scan(self, rmat_graph, rmat_db, machine):
        rng = np.random.default_rng(3)
        member = rng.random(rmat_graph.num_vertices) < 0.4
        result = GTSEngine(rmat_db, machine).run(
            InducedSubgraphKernel(member))
        assert result.values["num_induced_edges"][0] == \
            _direct_induced_count(rmat_graph, member)

    def test_accepts_id_list(self, rmat_graph, rmat_db, machine):
        ids = [0, 1, 2, 3, 4]
        result = GTSEngine(rmat_db, machine).run(
            InducedSubgraphKernel(ids))
        member = result.values["member"]
        assert member[:5].all()
        assert member.sum() == 5

    def test_collected_edges_all_internal(self, rmat_graph, rmat_db,
                                          machine):
        rng = np.random.default_rng(5)
        member = rng.random(rmat_graph.num_vertices) < 0.3
        result = GTSEngine(rmat_db, machine).run(
            InducedSubgraphKernel(member, collect_edges=True))
        edges = result.values["edges"]
        assert len(edges) == result.values["num_induced_edges"][0]
        if len(edges):
            assert member[edges[:, 0]].all()
            assert member[edges[:, 1]].all()

    def test_internal_degree_sums_to_edges(self, rmat_graph, rmat_db,
                                           machine):
        rng = np.random.default_rng(7)
        member = rng.random(rmat_graph.num_vertices) < 0.5
        result = GTSEngine(rmat_db, machine).run(
            InducedSubgraphKernel(member))
        assert (result.values["internal_degree"].sum()
                == result.values["num_induced_edges"][0])

    def test_full_set_keeps_every_edge(self, rmat_graph, rmat_db,
                                       machine):
        member = np.ones(rmat_graph.num_vertices, dtype=bool)
        result = GTSEngine(rmat_db, machine).run(
            InducedSubgraphKernel(member))
        assert result.values["num_induced_edges"][0] == \
            rmat_graph.num_edges

    def test_empty_set(self, rmat_graph, rmat_db, machine):
        member = np.zeros(rmat_graph.num_vertices, dtype=bool)
        result = GTSEngine(rmat_db, machine).run(
            InducedSubgraphKernel(member))
        assert result.values["num_induced_edges"][0] == 0

    def test_mask_length_validated(self, rmat_db, machine):
        with pytest.raises(ConfigurationError):
            GTSEngine(rmat_db, machine).run(
                InducedSubgraphKernel(np.zeros(3, dtype=bool)))

    def test_id_range_validated(self, rmat_db, machine):
        with pytest.raises(ConfigurationError):
            GTSEngine(rmat_db, machine).run(
                InducedSubgraphKernel([10 ** 9]))


class TestEgonet:
    def test_members_are_ego_plus_neighbours(self, rmat_graph, rmat_db,
                                             machine):
        ego = int(np.argmax(rmat_graph.out_degrees()))
        result = GTSEngine(rmat_db, machine).run(EgonetKernel(ego))
        expected = np.zeros(rmat_graph.num_vertices, dtype=bool)
        expected[ego] = True
        expected[rmat_graph.neighbors(ego)] = True
        assert np.array_equal(result.values["member"], expected)

    def test_edge_count_matches_direct(self, rmat_graph, rmat_db,
                                       machine):
        ego = int(np.argmax(rmat_graph.out_degrees()))
        result = GTSEngine(rmat_db, machine).run(EgonetKernel(ego))
        member = result.values["member"]
        assert result.values["num_induced_edges"][0] == \
            _direct_induced_count(rmat_graph, member)

    def test_two_phases(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(EgonetKernel(0))
        assert result.num_rounds == 2

    def test_isolated_ego(self, machine, small_config):
        graph = generate_star(50)  # leaves have no out-edges
        db = build_database(graph, small_config)
        result = GTSEngine(db, machine).run(EgonetKernel(ego_vertex=7))
        assert result.values["member"].sum() == 1
        assert result.values["num_induced_edges"][0] == 0

    def test_star_center_egonet(self, machine, small_config):
        graph = generate_star(50)
        db = build_database(graph, small_config)
        result = GTSEngine(db, machine).run(EgonetKernel(ego_vertex=0))
        assert result.values["member"].all()
        assert result.values["num_induced_edges"][0] == 49

    def test_triangle_closure_counted(self, machine, small_config):
        # 0 -> {1, 2}; 1 -> 2 closes a triangle inside the egonet.
        graph = Graph.from_edges(3, [0, 0, 1], [1, 2, 2])
        db = build_database(graph, small_config)
        result = GTSEngine(db, machine).run(EgonetKernel(0))
        assert result.values["num_induced_edges"][0] == 3

    def test_ego_validated(self, rmat_db, machine):
        with pytest.raises(ConfigurationError):
            GTSEngine(rmat_db, machine).run(EgonetKernel(10 ** 9))
        with pytest.raises(ConfigurationError):
            EgonetKernel(-1)
