"""Tests for the experiment harness: datasets, tables, runners."""

import numpy as np
import pytest

from repro.bench.datasets import (
    DATASETS,
    SCALE_FACTOR,
    dataset_database,
    dataset_graph,
    dataset_spec,
    default_start_vertex,
)
from repro.bench.harness import (
    NOT_AVAILABLE,
    OOM,
    ExperimentTable,
    format_cell,
    run_or_oom,
)
from repro.errors import ConfigurationError, OutOfMemoryError


class TestDatasetRegistry:
    def test_contains_paper_datasets(self):
        for name in ("rmat27", "rmat32", "twitter", "uk2007", "yahooweb"):
            assert name in DATASETS

    def test_scale_factor_is_two_to_thirteen(self):
        assert SCALE_FACTOR == 8192

    def test_rmat_scaled_sizes(self):
        graph = dataset_graph("rmat27")
        assert graph.num_vertices == 1 << (27 - 13)
        assert graph.num_edges == 16 * graph.num_vertices

    def test_rmat30_uses_33_config(self):
        db = dataset_database("rmat30")
        assert db.config.page_id_bytes == 3
        assert db.config.slot_bytes == 3

    def test_small_rmat_uses_22_config(self):
        db = dataset_database("rmat27")
        assert db.config.page_id_bytes == 2
        assert db.config.slot_bytes == 2

    def test_graphs_are_cached(self):
        assert dataset_graph("rmat26") is dataset_graph("rmat26")

    def test_weighted_variant_differs(self):
        plain = dataset_graph("rmat26")
        weighted = dataset_graph("rmat26", weighted=True)
        assert plain.weights is None
        assert weighted.weights is not None

    def test_symmetrised_variant(self):
        sym = dataset_graph("rmat26", symmetrised=True)
        pairs = set(zip(*sym.edge_list()))
        assert all((t, s) in pairs for s, t in list(pairs)[:100])

    def test_databases_validate(self):
        dataset_database("rmat26").validate()
        dataset_database("twitter").validate()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            dataset_spec("facebook")

    def test_default_start_vertex_is_busiest(self):
        graph = dataset_graph("rmat26")
        start = default_start_vertex(graph)
        assert graph.out_degrees()[start] == graph.out_degrees().max()

    def test_real_graph_sizes_near_targets(self):
        for name in ("twitter", "uk2007", "yahooweb"):
            spec = dataset_spec(name)
            graph = dataset_graph(name)
            target = spec.paper_edges / SCALE_FACTOR
            assert 0.4 * target < graph.num_edges < 2.0 * target


class TestRunOrOOM:
    def test_passes_through_results(self):
        assert run_or_oom(lambda: 42) == 42

    def test_maps_oom_to_marker(self):
        def boom():
            raise OutOfMemoryError("too big")
        assert run_or_oom(boom) == OOM

    def test_propagates_other_errors(self):
        def bug():
            raise ValueError("not a capacity problem")
        with pytest.raises(ValueError):
            run_or_oom(bug)

    def test_forwards_arguments(self):
        assert run_or_oom(lambda a, b=0: a + b, 1, b=2) == 3


class TestFormatCell:
    def test_strings_pass_through(self):
        assert format_cell(OOM) == "O.O.M."
        assert format_cell(NOT_AVAILABLE) == "N/A"

    def test_none_renders_dash(self):
        assert format_cell(None) == "-"

    def test_float_renders_as_time(self):
        assert format_cell(1.5) == "1.5 s"

    def test_result_like_object(self):
        class Dummy:
            elapsed_seconds = 0.002
        assert format_cell(Dummy()) == "2.0 ms"

    def test_rescale(self):
        assert format_cell(0.001, rescale=1000) == "1.0 s"


class TestExperimentTable:
    def _table(self):
        table = ExperimentTable("Demo", ["a", "b"], caption="note")
        table.add_row("row1", [1, "x"])
        table.add_row("row2", [2, "yy"])
        return table

    def test_render_contains_everything(self):
        text = self._table().render()
        assert "Demo" in text
        assert "row1" in text and "row2" in text
        assert "yy" in text
        assert "note" in text

    def test_columns_aligned(self):
        lines = self._table().render().splitlines()
        data_lines = [line for line in lines if "|" in line]
        assert len({line.index("|") for line in data_lines}) == 1

    def test_wrong_cell_count_rejected(self):
        table = ExperimentTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("r", [1])

    def test_save_writes_file(self, tmp_path):
        path = self._table().save(str(tmp_path), "demo.txt")
        with open(path) as handle:
            assert "Demo" in handle.read()

    def test_show_returns_table(self, capsys):
        table = self._table()
        assert table.show() is table
        assert "Demo" in capsys.readouterr().out
