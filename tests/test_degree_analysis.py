"""Tests for degree-distribution analysis and the stream scheduler."""

import numpy as np
import pytest

from repro.core.streams import StreamScheduler
from repro.errors import ConfigurationError
from repro.graphgen import Graph, generate_erdos_renyi, generate_rmat
from repro.graphgen.degree import (
    degree_histogram,
    gini_coefficient,
    power_law_exponent,
    summarize_degrees,
)
from repro.graphgen.random_graphs import generate_ring, generate_star
from repro.hardware.machine import MachineRuntime
from repro.hardware.specs import paper_workstation
from repro.units import MB


class TestDegreeHistogram:
    def test_counts_sum_to_vertices(self, rmat_graph):
        _, counts = degree_histogram(rmat_graph)
        assert counts.sum() == rmat_graph.num_vertices

    def test_ring_is_regular(self):
        degrees, counts = degree_histogram(generate_ring(10))
        assert list(degrees) == [1]
        assert list(counts) == [10]

    def test_star(self):
        degrees, counts = degree_histogram(generate_star(5))
        assert list(degrees) == [0, 4]
        assert list(counts) == [4, 1]

    def test_in_direction(self):
        degrees, counts = degree_histogram(generate_star(5),
                                           direction="in")
        assert list(degrees) == [0, 1]
        assert list(counts) == [1, 4]

    def test_bad_direction_rejected(self, rmat_graph):
        with pytest.raises(ConfigurationError):
            degree_histogram(rmat_graph, direction="sideways")


class TestPowerLawExponent:
    def test_rmat_in_scale_free_range(self):
        graph = generate_rmat(13, edge_factor=16, seed=1)
        alpha = power_law_exponent(graph, d_min=4)
        assert 1.3 < alpha < 3.5

    def test_er_has_larger_exponent_than_rmat(self):
        rmat = generate_rmat(12, edge_factor=16, seed=1)
        er = generate_erdos_renyi(4096, 16, seed=1)
        assert (power_law_exponent(er, d_min=8)
                > power_law_exponent(rmat, d_min=8))

    def test_insufficient_tail_is_nan(self):
        graph = Graph.from_edges(4, [0], [1])
        assert np.isnan(power_law_exponent(graph, d_min=5))

    def test_d_min_validated(self, rmat_graph):
        with pytest.raises(ConfigurationError):
            power_law_exponent(rmat_graph, d_min=0)


class TestGini:
    def test_regular_graph_is_zero(self):
        assert gini_coefficient(generate_ring(32)) == pytest.approx(0.0)

    def test_star_is_nearly_one(self):
        assert gini_coefficient(generate_star(200)) > 0.95

    def test_rmat_more_unequal_than_er(self):
        rmat = generate_rmat(12, edge_factor=16, seed=2)
        er = generate_erdos_renyi(4096, 16, seed=2)
        assert gini_coefficient(rmat) > gini_coefficient(er)

    def test_empty_graph(self):
        assert gini_coefficient(Graph.from_edges(3, [], [])) == 0.0


class TestSummary:
    def test_fields_consistent(self, rmat_graph):
        summary = summarize_degrees(rmat_graph)
        assert summary.num_vertices == rmat_graph.num_vertices
        assert summary.num_edges == rmat_graph.num_edges
        assert summary.mean_degree == pytest.approx(
            rmat_graph.num_edges / rmat_graph.num_vertices)
        assert summary.max_degree == rmat_graph.max_degree()

    def test_rmat_is_heavy_tailed(self, rmat_graph):
        assert summarize_degrees(rmat_graph).is_heavy_tailed()

    def test_ring_is_not_heavy_tailed(self):
        assert not summarize_degrees(generate_ring(64)).is_heavy_tailed()


class TestStreamScheduler:
    def _scheduler(self, num_streams=2):
        runtime = MachineRuntime(paper_workstation(),
                                 num_streams=num_streams,
                                 page_bytes=1 * MB)
        return StreamScheduler(runtime), runtime

    def test_round_robin_assignment(self):
        scheduler, runtime = self._scheduler(num_streams=2)
        for _ in range(4):
            scheduler.dispatch_cached(0, 0.0, 1e6, 24.0)
        slots = runtime.gpus[0].streams.slots
        assert slots[0].num_activities == 2
        assert slots[1].num_activities == 2

    def test_per_gpu_counters(self):
        scheduler, _ = self._scheduler()
        scheduler.dispatch_cached(0, 0.0, 1e3, 24.0)
        scheduler.dispatch_cached(1, 0.0, 1e3, 24.0)
        scheduler.dispatch_cached(1, 0.0, 1e3, 24.0)
        assert scheduler.dispatched_pages(0) == 1
        assert scheduler.dispatched_pages(1) == 2
        assert scheduler.dispatched_pages() == 3

    def test_streamed_copy_precedes_kernel(self):
        scheduler, _ = self._scheduler()
        copy_end, kernel_end = scheduler.dispatch_streamed(
            0, ready_time=1.0, copy_bytes=6 * 1024 ** 3,
            lane_steps=1e6, cycles_per_lane_step=24.0)
        assert copy_end > 1.0
        assert kernel_end > copy_end

    def test_copies_serialize_on_copy_engine(self):
        scheduler, runtime = self._scheduler(num_streams=4)
        ends = [scheduler.dispatch_streamed(0, 0.0, 6 * 1024 ** 3,
                                            1.0, 1.0)[0]
                for _ in range(3)]
        # Each 1 GB-per-second-class copy waits for the previous one.
        assert ends[1] > ends[0]
        assert ends[2] > ends[1]
        assert runtime.gpus[0].copy_engine.num_activities == 3

    def test_negative_bytes_rejected(self):
        scheduler, _ = self._scheduler()
        with pytest.raises(ConfigurationError):
            scheduler.dispatch_streamed(0, 0.0, -1, 1.0, 1.0)

    def test_cached_dispatch_skips_copy_engine(self):
        scheduler, runtime = self._scheduler()
        scheduler.dispatch_cached(0, 0.0, 1e6, 24.0)
        assert runtime.gpus[0].copy_engine.num_activities == 0
        assert runtime.gpus[0].kernel_invocations == 1
