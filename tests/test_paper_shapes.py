"""Regression locks on the paper's headline claims.

Every test here asserts one *qualitative* result of the evaluation —
an ordering, a crossover, an O.O.M. boundary — so that recalibrating any
constant cannot silently break the reproduction.  These run on the
scaled experiment datasets, so they are slower than unit tests but still
bounded (seconds each).
"""

import numpy as np
import pytest

from repro.baselines.cpu import LigraEngine, MTGLEngine, scaled_cpu_host
from repro.baselines.distributed import (
    GiraphEngine,
    GraphXEngine,
    NaiadEngine,
    PowerGraphEngine,
    scaled_cluster,
)
from repro.baselines.gpu import CuShaEngine, MapGraphEngine, TotemEngine
from repro.baselines.outofcore import GraphChiEngine, XStreamEngine
from repro.bench.datasets import (
    SCALE_FACTOR,
    dataset_database,
    dataset_graph,
    default_start_vertex,
)
from repro.bench.experiments import (
    _gts_algorithm_run,
    _gts_run,
)
from repro.core import BFSKernel, PageRankKernel
from repro.errors import OutOfMemoryError
from repro.hardware.specs import scaled_workstation


@pytest.fixture(scope="module")
def twitter():
    return dataset_graph("twitter")


@pytest.fixture(scope="module")
def twitter_start(twitter):
    return default_start_vertex(twitter)


def _cluster_engine(cls):
    return cls(scaled_cluster(SCALE_FACTOR), time_scale=SCALE_FACTOR)


def _host_engine(cls):
    return cls(scaled_cpu_host(SCALE_FACTOR), time_scale=SCALE_FACTOR)


def _gpu_engine(cls, **kwargs):
    machine = scaled_workstation()
    return cls(host=scaled_cpu_host(SCALE_FACTOR),
               gpus=list(machine.gpus), pcie=machine.pcie,
               time_scale=SCALE_FACTOR, **kwargs)


class TestFigure6Claims:
    """GTS vs the distributed engines."""

    def test_gts_beats_every_distributed_engine_on_pagerank(
            self, twitter):
        gts = _gts_algorithm_run("PageRank", "twitter").elapsed_seconds
        for cls in (GraphXEngine, GiraphEngine, PowerGraphEngine,
                    NaiadEngine):
            baseline = _cluster_engine(cls).run_pagerank(
                twitter, 10).elapsed_seconds
            assert gts < baseline, cls.__name__

    def test_gts_beats_every_distributed_engine_on_twitter_bfs(
            self, twitter, twitter_start):
        gts = _gts_algorithm_run("BFS", "twitter").elapsed_seconds
        for cls in (GraphXEngine, GiraphEngine, PowerGraphEngine,
                    NaiadEngine):
            baseline = _cluster_engine(cls).run_bfs(
                twitter, twitter_start).elapsed_seconds
            assert gts < baseline, cls.__name__

    def test_only_gts_reaches_rmat32(self):
        graph = dataset_graph("rmat32")
        for cls in (GraphXEngine, GiraphEngine, PowerGraphEngine,
                    NaiadEngine):
            with pytest.raises(OutOfMemoryError):
                _cluster_engine(cls).run_pagerank(graph, 1)
        result = _gts_algorithm_run("PageRank", "rmat32", iterations=1)
        assert result.elapsed_seconds > 0

    def test_rmat32_pagerank_needs_strategy_s(self):
        result = _gts_algorithm_run("PageRank", "rmat32", iterations=1)
        assert result.strategy == "scalability"

    def test_cost_jumps_when_graph_leaves_main_memory(self):
        """Paper: "the processing time of GTS rapidly increases between
        RMAT30 and RMAT31"."""
        ladder = {
            name: _gts_algorithm_run("PageRank", name,
                                     iterations=5).elapsed_seconds
            for name in ("rmat29", "rmat30", "rmat31")
        }
        in_memory_step = ladder["rmat30"] / ladder["rmat29"]
        spill_step = ladder["rmat31"] / ladder["rmat30"]
        assert spill_step > in_memory_step


class TestFigure7Claims:
    """GTS vs the CPU engines."""

    def test_cpu_engines_win_small_bfs(self, twitter, twitter_start):
        gts = _gts_algorithm_run("BFS", "twitter").elapsed_seconds
        ligra = _host_engine(LigraEngine).run_bfs(
            twitter, twitter_start).elapsed_seconds
        assert ligra < gts

    def test_gts_wins_pagerank(self, twitter):
        gts = _gts_algorithm_run("PageRank", "twitter").elapsed_seconds
        ligra = _host_engine(LigraEngine).run_pagerank(
            twitter, 10).elapsed_seconds
        assert gts < ligra

    def test_cpu_engines_oom_on_yahooweb(self):
        graph = dataset_graph("yahooweb")
        for cls in (MTGLEngine, LigraEngine):
            with pytest.raises(OutOfMemoryError):
                _host_engine(cls).run_bfs(graph, 0)


class TestFigure8Claims:
    """GTS vs the GPU engines."""

    def test_mapgraph_cannot_hold_twitter(self, twitter):
        with pytest.raises(OutOfMemoryError):
            _gpu_engine(MapGraphEngine).run_bfs(twitter, 0)

    def test_cusha_holds_twitter_bfs_only(self, twitter, twitter_start):
        engine = _gpu_engine(CuShaEngine)
        assert engine.run_bfs(twitter, twitter_start).elapsed_seconds > 0
        with pytest.raises(OutOfMemoryError):
            engine.run_pagerank(twitter, 10)
        with pytest.raises(OutOfMemoryError):
            _gpu_engine(CuShaEngine).run_bfs(dataset_graph("rmat27"), 0)

    def test_totem_wins_small_pagerank_loses_bfs(self, twitter,
                                                 twitter_start):
        totem = _gpu_engine(TotemEngine)
        gts_pr = _gts_algorithm_run("PageRank", "twitter").elapsed_seconds
        gts_bfs = _gts_algorithm_run("BFS", "twitter").elapsed_seconds
        totem_pr = totem.run_pagerank(
            twitter, 10, dataset_name="twitter").elapsed_seconds
        totem_bfs = totem.run_bfs(
            twitter, twitter_start, dataset_name="twitter").elapsed_seconds
        assert totem_pr < gts_pr
        assert gts_bfs < totem_bfs

    def test_totem_loses_large_pagerank(self):
        graph = dataset_graph("rmat29")
        gts = _gts_algorithm_run("PageRank", "rmat29").elapsed_seconds
        totem = _gpu_engine(TotemEngine).run_pagerank(
            graph, 10, dataset_name="rmat29").elapsed_seconds
        assert gts < totem

    def test_totem_oom_beyond_main_memory(self):
        graph = dataset_graph("rmat30")
        with pytest.raises(OutOfMemoryError):
            _gpu_engine(TotemEngine).run_pagerank(graph, 1)


class TestSection8Claims:
    def test_gts_beats_streaming_engines(self, twitter, twitter_start):
        kwargs = dict(time_scale=SCALE_FACTOR,
                      host=scaled_cpu_host(SCALE_FACTOR), num_disks=2)
        db = dataset_database("twitter")
        gts = _gts_run(
            BFSKernel(twitter_start), "twitter",
            mm_buffer_bytes=int(0.2 * db.topology_bytes())
        ).elapsed_seconds
        xstream = XStreamEngine(**kwargs).run_bfs(
            twitter, twitter_start).elapsed_seconds
        graphchi = GraphChiEngine(**kwargs).run_bfs(
            twitter, twitter_start).elapsed_seconds
        assert gts < xstream < graphchi


class TestTable4Claims:
    def test_wa_to_topology_ratio_in_paper_band(self):
        for name in ("rmat28", "rmat30", "rmat32"):
            db = dataset_database(name)
            for kernel in (BFSKernel(0), PageRankKernel()):
                ratio = kernel.wa_bytes(db.num_vertices) \
                    / db.topology_bytes()
                assert 0.01 < ratio < 0.12, (name, kernel.name, ratio)
