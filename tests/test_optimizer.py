"""Tests for the cost-based configuration optimizer (Section 5)."""

import pytest

from repro.core import BFSKernel, GTSEngine, PageRankKernel
from repro.core.optimizer import (
    ConfigurationChoice,
    estimate_elapsed,
    recommend_configuration,
)
from repro.errors import CapacityError
from repro.hardware.specs import (
    GPUSpec,
    MachineSpec,
    SSD_SPEC,
    scaled_workstation,
)
from repro.units import MB


class TestEstimates:
    def test_more_streams_never_slower(self, rmat_db, machine):
        times = [estimate_elapsed(rmat_db, machine, PageRankKernel(),
                                  "performance", k)
                 for k in (1, 2, 4, 8, 16, 32)]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier + 1e-12

    def test_performance_beats_scalability(self, rmat_db, machine):
        p = estimate_elapsed(rmat_db, machine, PageRankKernel(),
                             "performance", 16)
        s = estimate_elapsed(rmat_db, machine, PageRankKernel(),
                             "scalability", 16)
        assert p < s

    def test_rounds_scale_linearly(self, rmat_db, machine):
        one = estimate_elapsed(rmat_db, machine, PageRankKernel(),
                               "performance", 16, rounds=1)
        ten = estimate_elapsed(rmat_db, machine, PageRankKernel(),
                               "performance", 16, rounds=10)
        assert ten == pytest.approx(10 * one, rel=0.15)

    def test_estimate_within_factor_of_engine(self, rmat_db, machine):
        """The analytic estimate should land within 4x of the DES for a
        full-scan workload (same bandwidth arithmetic, coarser pipeline
        model)."""
        estimate = estimate_elapsed(rmat_db, machine, PageRankKernel(),
                                    "performance", 32, rounds=5)
        measured = GTSEngine(rmat_db, machine, num_streams=32,
                             enable_caching=False).run(
            PageRankKernel(iterations=5)).elapsed_seconds
        assert estimate / 4 < measured < estimate * 4


class TestRecommendation:
    def test_matches_brute_force_winner(self, rmat_db, machine):
        recommendation = recommend_configuration(
            rmat_db, machine, PageRankKernel(), rounds=5)
        best = recommendation.best
        # Measure the recommended configuration and a deliberately bad
        # one; the recommendation must win.
        good = GTSEngine(rmat_db, machine, strategy=best.strategy,
                         num_streams=best.num_streams).run(
            PageRankKernel(iterations=5)).elapsed_seconds
        bad = GTSEngine(rmat_db, machine, strategy="scalability",
                        num_streams=1).run(
            PageRankKernel(iterations=5)).elapsed_seconds
        assert good < bad

    def test_prefers_strategy_p_when_wa_fits(self, rmat_db, machine):
        recommendation = recommend_configuration(
            rmat_db, machine, PageRankKernel())
        assert recommendation.best.strategy == "performance"

    def test_falls_back_to_strategy_s_when_wa_too_big(self, rmat_db):
        kernel = PageRankKernel()
        wa = kernel.wa_bytes(rmat_db.num_vertices)
        # Device memory sized so the full WA plus the single-stream
        # buffers overflow, but half the WA (Strategy-S on 2 GPUs) fits.
        max_records = max(e.num_records for e in rmat_db.directory)
        buffers = (max_records * kernel.ra_bytes_per_vertex
                   + 2 * rmat_db.config.page_size)
        gpu = GPUSpec(device_memory=wa // 2 + buffers + 64)
        machine = MachineSpec(gpus=(gpu, gpu), storages=(SSD_SPEC,),
                              main_memory=64 * MB)
        recommendation = recommend_configuration(
            rmat_db, machine, kernel, stream_choices=(1,))
        assert recommendation.best.strategy == "scalability"
        assert any(not c.feasible for c in recommendation.candidates
                   if c.strategy == "performance")

    def test_raises_when_nothing_fits(self, rmat_db):
        gpu = GPUSpec(device_memory=4 * rmat_db.config.page_size)
        machine = MachineSpec(gpus=(gpu,), storages=(SSD_SPEC,),
                              main_memory=64 * MB)
        with pytest.raises(CapacityError):
            recommend_configuration(rmat_db, machine, PageRankKernel(),
                                    stream_choices=(8, 16))

    def test_describe_lists_all_candidates(self, rmat_db, machine):
        recommendation = recommend_configuration(
            rmat_db, machine, BFSKernel(0), stream_choices=(1, 32))
        text = recommendation.describe()
        assert "recommendation" in text
        assert text.count("performance") == 2
        assert text.count("scalability") == 2

    def test_candidates_cover_the_grid(self, rmat_db, machine):
        recommendation = recommend_configuration(
            rmat_db, machine, BFSKernel(0), stream_choices=(2, 4))
        assert len(recommendation.candidates) == 4
        assert all(isinstance(c, ConfigurationChoice)
                   for c in recommendation.candidates)
