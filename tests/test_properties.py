"""Cross-cutting property-based tests over the whole stack.

These are the highest-value hypothesis tests: arbitrary random graphs are
built into slotted pages, streamed through the full engine under randomly
chosen configurations, and the results must always equal the reference
algorithms.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import reference
from repro.core import BFSKernel, GTSEngine, PageRankKernel, WCCKernel
from repro.format import PageFormatConfig, build_database
from repro.graphgen import Graph
from repro.hardware.specs import scaled_workstation
from repro.units import KB


def _random_graph(data, max_vertices=120, max_edges=400):
    num_vertices = data.draw(st.integers(2, max_vertices))
    num_edges = data.draw(st.integers(0, max_edges))
    seed = data.draw(st.integers(0, 10 ** 6))
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, num_vertices, size=num_edges)
    targets = rng.integers(0, num_vertices, size=num_edges)
    return Graph.from_edges(num_vertices, sources, targets)


def _engine(db, data):
    machine = scaled_workstation(
        num_gpus=data.draw(st.sampled_from([1, 2, 3])),
        num_ssds=data.draw(st.sampled_from([1, 2])))
    return GTSEngine(
        db, machine,
        strategy=data.draw(st.sampled_from(["performance", "scalability"])),
        num_streams=data.draw(st.sampled_from([1, 4, 16])),
        micro_technique=data.draw(
            st.sampled_from(["edge", "vertex", "hybrid"])),
        enable_caching=data.draw(st.booleans()),
    )


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_bfs_always_matches_reference(data):
    graph = _random_graph(data)
    config = PageFormatConfig(2, 2, 1 * KB)
    db = build_database(graph, config)
    start = data.draw(st.integers(0, graph.num_vertices - 1))
    result = _engine(db, data).run(BFSKernel(start))
    assert np.array_equal(result.values["level"],
                          reference.bfs_levels(graph, start))


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_pagerank_always_matches_reference(data):
    graph = _random_graph(data)
    config = PageFormatConfig(2, 2, 1 * KB)
    db = build_database(graph, config)
    iterations = data.draw(st.integers(1, 6))
    result = _engine(db, data).run(PageRankKernel(iterations=iterations))
    expected = reference.pagerank(graph, iterations=iterations)
    assert np.allclose(result.values["rank"], expected, atol=1e-12)


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_wcc_always_matches_reference(data):
    graph = _random_graph(data, max_vertices=60, max_edges=150)
    sym = graph.symmetrised()
    config = PageFormatConfig(2, 2, 1 * KB)
    db = build_database(sym, config)
    result = _engine(db, data).run(WCCKernel())
    expected = reference.weakly_connected_components(graph)
    assert np.array_equal(result.values["component"], expected)


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_simulated_time_is_positive_and_finite(data):
    graph = _random_graph(data, max_vertices=60, max_edges=150)
    config = PageFormatConfig(2, 2, 1 * KB)
    db = build_database(graph, config)
    result = _engine(db, data).run(PageRankKernel(iterations=2))
    assert np.isfinite(result.elapsed_seconds)
    assert result.elapsed_seconds > 0
    # The elapsed time covers at least the busy time of the busiest
    # single resource (no resource can be over-committed).
    assert result.elapsed_seconds >= (
        result.kernel_busy_seconds / (result.num_gpus * 32) - 1e-12)


@settings(max_examples=10, deadline=None)
@given(st.data())
def test_page_sizes_do_not_change_results(data):
    """Building the same graph with different page sizes is invisible to
    the algorithms."""
    graph = _random_graph(data, max_vertices=80, max_edges=250)
    start = data.draw(st.integers(0, graph.num_vertices - 1))
    machine = scaled_workstation()
    levels = []
    for page_size in (512, 2048, 8192):
        config = PageFormatConfig(2, 2, page_size)
        db = build_database(graph, config)
        result = GTSEngine(db, machine).run(BFSKernel(start))
        levels.append(result.values["level"])
    assert np.array_equal(levels[0], levels[1])
    assert np.array_equal(levels[1], levels[2])


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_every_random_schedule_passes_des_validation(data):
    """Property: any engine run under any configuration produces a
    schedule satisfying the DES invariants (no resource overlap, busy
    accounting, concurrency caps)."""
    graph = _random_graph(data, max_vertices=80, max_edges=250)
    config = PageFormatConfig(2, 2, 1 * KB)
    db = build_database(graph, config)
    machine = scaled_workstation(
        num_gpus=data.draw(st.sampled_from([1, 2, 3])))
    engine = GTSEngine(
        db, machine,
        strategy=data.draw(st.sampled_from(["performance",
                                            "scalability"])),
        num_streams=data.draw(st.sampled_from([1, 3, 16])),
        enable_caching=data.draw(st.booleans()),
        validate_simulation=True)
    kernel = data.draw(st.sampled_from([
        BFSKernel(0), PageRankKernel(iterations=2), WCCKernel()]))
    result = engine.run(kernel)  # raises SimulationError on violation
    assert result.elapsed_seconds > 0
