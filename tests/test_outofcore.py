"""Tests for the X-Stream / GraphChi out-of-core baselines (Section 8)."""

import numpy as np
import pytest

from repro.baselines import reference
from repro.baselines.cpu import CPUHostSpec
from repro.baselines.outofcore import GraphChiEngine, XStreamEngine
from repro.errors import OutOfMemoryError
from repro.graphgen import generate_rmat
from repro.graphgen.random_graphs import generate_ring
from repro.hardware.specs import HDD_SPEC, SSD_SPEC


@pytest.fixture(scope="module")
def graph():
    return generate_rmat(9, edge_factor=8, seed=77)


class TestCorrectness:
    @pytest.mark.parametrize("engine_cls", [XStreamEngine, GraphChiEngine])
    def test_bfs_values_exact(self, engine_cls, graph):
        result = engine_cls().run_bfs(graph, 0)
        assert np.array_equal(result.values["level"],
                              reference.bfs_levels(graph, 0))

    @pytest.mark.parametrize("engine_cls", [XStreamEngine, GraphChiEngine])
    def test_pagerank_values_exact(self, engine_cls, graph):
        result = engine_cls().run_pagerank(graph, iterations=3)
        assert np.allclose(result.values["rank"],
                           reference.pagerank(graph, iterations=3))

    def test_cc_and_sssp_supported(self, graph):
        engine = XStreamEngine()
        weighted = graph.with_random_weights(seed=1)
        assert np.array_equal(
            engine.run_cc(graph).values["component"],
            reference.weakly_connected_components(graph))
        assert np.allclose(
            engine.run_sssp(weighted, 0).values["distance"],
            reference.sssp_distances(weighted, 0), rtol=1e-5,
            equal_nan=True)


class TestSection8Claims:
    def test_xstream_traversal_cost_scales_with_diameter(self):
        """Every BFS level costs a full edge-list scan: a deep graph of
        the same size is proportionally slower."""
        shallow = generate_rmat(10, edge_factor=8, seed=3)
        deep = generate_ring(shallow.num_edges // 2, hops=2)
        assert deep.num_edges == shallow.num_edges
        engine = XStreamEngine()
        start = int(np.argmax(shallow.out_degrees()))
        shallow_time = engine.run_bfs(shallow, start).elapsed_seconds
        deep_time = engine.run_bfs(deep, 0).elapsed_seconds
        shallow_depth = engine.run_bfs(shallow, start).num_rounds
        deep_depth = engine.run_bfs(deep, 0).num_rounds
        assert deep_depth > 10 * shallow_depth
        assert deep_time > 10 * shallow_time

    def test_graphchi_slower_than_xstream(self, graph):
        """'GraphChi ... shows a worse performance than X-Stream.'"""
        assert (GraphChiEngine().run_bfs(graph, 0).elapsed_seconds
                > XStreamEngine().run_bfs(graph, 0).elapsed_seconds)
        assert (GraphChiEngine().run_pagerank(graph, 5).elapsed_seconds
                > XStreamEngine().run_pagerank(graph, 5).elapsed_seconds)

    def test_full_scan_per_level_even_with_tiny_frontier(self):
        """X-Stream's per-level cost is flat in frontier size."""
        ring = generate_ring(512)
        engine = XStreamEngine()
        result = engine.run_bfs(ring, 0)
        per_level = result.elapsed_seconds / result.num_rounds
        scan_floor = (ring.num_edges * engine.edge_bytes
                      / engine.storage_bandwidth())
        assert per_level >= scan_floor

    def test_more_disks_speed_up_streaming(self, graph):
        one = XStreamEngine(num_disks=1).run_pagerank(graph, 5)
        two = XStreamEngine(num_disks=2).run_pagerank(graph, 5)
        assert two.elapsed_seconds < one.elapsed_seconds

    def test_hdd_much_slower_than_ssd(self, graph):
        ssd = XStreamEngine(storage=SSD_SPEC).run_pagerank(graph, 5)
        hdd = XStreamEngine(storage=HDD_SPEC).run_pagerank(graph, 5)
        assert hdd.elapsed_seconds > 5 * ssd.elapsed_seconds


class TestMemoryModel:
    def test_vertex_state_must_fit(self, graph):
        host = CPUHostSpec(main_memory=1024)
        with pytest.raises(OutOfMemoryError):
            XStreamEngine(host=host).run_bfs(graph, 0)

    def test_edges_need_not_fit(self, graph):
        """Out-of-core engines only need vertex state resident."""
        host = CPUHostSpec(
            main_memory=graph.num_vertices * 64 + 4096)
        result = XStreamEngine(host=host).run_bfs(graph, 0)
        assert result.num_rounds > 0

    def test_graphchi_shard_count_grows_with_graph(self):
        small = generate_rmat(8, edge_factor=8, seed=1)
        large = generate_rmat(12, edge_factor=8, seed=1)
        host = CPUHostSpec(main_memory=large.num_edges * 4)
        engine = GraphChiEngine(host=host)
        assert engine.num_shards(large) > engine.num_shards(small)
