"""Service-layer tests: the determinism contract under concurrency.

The load-bearing property: N worker threads running mixed algorithms
against ONE shared database handle (shared page cache, shared plan
cache, shared scatter indexes, shared file pool) must produce results
bit-identical — outputs AND simulated timings — to serial one-shot
``GTSEngine.run()`` calls against a private cold handle.  Everything
else here (admission control, graceful drain, typed rejections, the
HTTP front end, fault isolation) guards the operational envelope
around that property.
"""

import dataclasses
import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core import GTSEngine
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ServiceError,
    ShutdownError,
)
from repro.format import PageFormatConfig, build_database
from repro.format.io import FileBackedDatabase, save_database
from repro.graphgen import generate_rmat
from repro.hardware.specs import scaled_workstation
from repro.obs import collect_service_metrics
from repro.service import (
    ALGORITHMS,
    GraphService,
    QueryRequest,
    ServiceClient,
    make_server,
)
from repro.units import KB

#: Small pool so the shared cache (not the per-database pool) carries
#: cross-query reuse; every workload below fits the test graph.
POOL_PAGES = 8

#: (algorithm, params, options) — mixed read workloads, both execution
#: paths, several start vertices.
WORKLOADS = [
    ("bfs", {"start": 0}, {}),
    ("bfs", {"start": 17}, {"execution": "paged"}),
    ("pagerank", {"iterations": 4}, {}),
    ("pagerank", {"iterations": 2}, {"execution": "paged"}),
    ("sssp", {"start": 3}, {}),
    ("cc", {}, {}),
    ("degree", {}, {"execution": "paged"}),
]


@pytest.fixture(scope="module")
def db_prefix(tmp_path_factory):
    """A saved, checksummed, weighted database on disk."""
    graph = generate_rmat(9, edge_factor=8, seed=11)
    graph = graph.with_random_weights(seed=11)
    db = build_database(graph,
                        PageFormatConfig(2, 2, 1 * KB, weight_bytes=4),
                        name="svc-graph")
    prefix = str(tmp_path_factory.mktemp("service") / "g")
    save_database(db, prefix)
    return prefix


def _one_shot(prefix, algorithm, params, options):
    """A cold, serial, private-handle reference run."""
    db = FileBackedDatabase(prefix, pool_pages=POOL_PAGES)
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    engine = GTSEngine(db, machine,
                       execution=options.get("execution", "auto"))
    start = params.get("start")
    start = (int(start) if start is not None
             else int(np.argmax(db.out_degrees)))
    kernel = ALGORITHMS[algorithm][0](params, start)
    return engine.run(kernel, dataset_name="g")


@pytest.fixture(scope="module")
def references(db_prefix):
    """Reference results for every workload, computed serially."""
    return [_one_shot(db_prefix, *w) for w in WORKLOADS]


def _assert_matches_reference(result, reference):
    """Bit-identical simulated behaviour; host-side fields may differ."""
    assert result.elapsed_seconds == reference.elapsed_seconds
    assert result.num_rounds == reference.num_rounds
    assert result.pages_streamed == reference.pages_streamed
    assert result.bytes_streamed == reference.bytes_streamed
    assert result.cache_hits == reference.cache_hits
    assert result.cache_misses == reference.cache_misses
    assert result.edges_traversed == reference.edges_traversed
    for key in reference.values:
        np.testing.assert_array_equal(result.values[key],
                                      reference.values[key])
    for mine, theirs in zip(result.rounds, reference.rounds):
        assert (dataclasses.asdict(mine)
                == dataclasses.asdict(theirs))


class TestConcurrentEquivalence:
    def test_concurrent_mixed_queries_bit_identical(self, db_prefix,
                                                    references):
        """The tentpole property: 64+ concurrent mixed queries against
        one shared handle reproduce serial one-shot runs exactly."""
        service = GraphService(max_in_flight=8, max_queue=256)
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        repeats = 10  # 7 workloads x 10 = 70 concurrent queries
        futures = []
        for wave in range(repeats):
            for index, (algorithm, params, options) in enumerate(
                    WORKLOADS):
                futures.append((index, service.submit(QueryRequest(
                    "g", algorithm, params=params, options=options))))
        assert len(futures) >= 64
        for index, future in futures:
            _assert_matches_reference(future.result(timeout=120),
                                      references[index])
        stats = service.stats()
        assert stats["completed"] == len(futures)
        assert stats["failed"] == 0
        assert stats["peak_in_flight"] >= 2  # genuinely concurrent
        assert service.drain(wait=True, timeout=30)

    def test_warm_queries_book_identical_simulated_time(self, db_prefix,
                                                        references):
        """Query #2 runs warm (shared cache populated) yet books the
        same simulated clock and outputs as the cold reference."""
        service = GraphService(max_in_flight=2)
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        algorithm, params, options = WORKLOADS[1]  # paged bfs
        cold = service.query("g", algorithm, params=params,
                             options=options)
        warm = service.query("g", algorithm, params=params,
                             options=options)
        _assert_matches_reference(cold, references[1])
        _assert_matches_reference(warm, references[1])
        # The warm run actually exercised the shared cache.
        assert warm.shared_hits > 0
        service.drain()

    def test_shared_cache_beats_per_run_rebuild_baseline(self,
                                                         db_prefix):
        """Acceptance gate: the shared cache's hit rate is strictly
        above the per-run-rebuild baseline (capacity 0: identical code
        path, accounting only, every probe a miss)."""
        workload = [("bfs", {"start": s}, {"execution": "paged"})
                    for s in (0, 3, 17, 29)]

        def run(shared_cache_pages):
            service = GraphService(max_in_flight=4,
                                   shared_cache_pages=shared_cache_pages)
            service.add_database(
                "g", db=FileBackedDatabase(db_prefix,
                                           pool_pages=POOL_PAGES))
            for _ in range(3):
                for algorithm, params, options in workload:
                    service.query("g", algorithm, params=params,
                                  options=options)
            stats = service.stats()["databases"]["g"]["shared_cache"]
            service.drain()
            return stats

        baseline = run(0)
        shared = run(None)
        assert baseline["hit_rate"] == 0.0
        assert shared["hit_rate"] > baseline["hit_rate"]
        assert shared["hits"] > 0


class TestAdmissionControl:
    def test_rejects_past_capacity_with_typed_error(self, db_prefix):
        service = GraphService(max_in_flight=1, max_queue=0)
        db = service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        assert db is not None
        # Hold the database gate so the admitted query parks inside
        # its worker, keeping in-flight occupancy deterministic.
        gate = service._entry("g").gate
        gate.acquire_write()
        try:
            first = service.submit(QueryRequest("g", "bfs",
                                                params={"start": 0}))
            with pytest.raises(AdmissionError) as excinfo:
                service.submit(QueryRequest("g", "bfs",
                                            params={"start": 0}))
            error = excinfo.value
            assert error.max_in_flight == 1
            assert error.max_queue == 0
            assert error.queue_depth + error.in_flight >= 1
        finally:
            gate.release_write()
        first.result(timeout=60)
        assert service.stats()["rejected_admission"] == 1
        service.drain()

    def test_rejections_cost_nothing(self, db_prefix):
        """A rejected query never reaches the executor: counters move,
        admitted/completed do not."""
        service = GraphService(max_in_flight=1, max_queue=0)
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        gate = service._entry("g").gate
        gate.acquire_write()
        try:
            future = service.submit(QueryRequest("g", "cc"))
            for _ in range(5):
                with pytest.raises(AdmissionError):
                    service.submit(QueryRequest("g", "cc"))
        finally:
            gate.release_write()
        future.result(timeout=60)
        stats = service.stats()
        assert stats["admitted"] == 1
        assert stats["rejected_admission"] == 5
        assert stats["completed"] == 1
        service.drain()


class TestGracefulShutdown:
    def test_drain_completes_in_flight_then_rejects(self, db_prefix,
                                                    references):
        service = GraphService(max_in_flight=4)
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        futures = [service.submit(QueryRequest("g", "pagerank",
                                               params={"iterations": 4}))
                   for _ in range(6)]
        assert service.drain(wait=True, timeout=60)
        for future in futures:
            _assert_matches_reference(future.result(timeout=1),
                                      references[2])
        with pytest.raises(ShutdownError):
            service.submit(QueryRequest("g", "bfs", params={"start": 0}))
        stats = service.stats()
        assert stats["draining"] is True
        assert stats["rejected_shutdown"] == 1

    def test_drain_is_idempotent(self, db_prefix):
        service = GraphService(max_in_flight=1)
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        assert service.drain(wait=True, timeout=10)
        assert service.drain(wait=True, timeout=10)


class TestRequestValidation:
    def test_unknown_database_is_typed(self, db_prefix):
        service = GraphService()
        with pytest.raises(ServiceError):
            service.submit(QueryRequest("nope", "bfs"))

    def test_unknown_algorithm_is_typed(self, db_prefix):
        service = GraphService()
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        with pytest.raises(ServiceError):
            service.submit(QueryRequest("g", "mincut"))
        service.drain()

    def test_weighted_algorithm_on_unweighted_db(self):
        graph = generate_rmat(8, edge_factor=4, seed=5)
        db = build_database(graph, PageFormatConfig(2, 2, 1 * KB))
        service = GraphService()
        service.add_database("plain", db=db)
        with pytest.raises(ServiceError):
            service.submit(QueryRequest("plain", "sssp",
                                        params={"start": 0}))
        service.drain()

    def test_bad_start_vertex_and_options(self, db_prefix):
        service = GraphService()
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        with pytest.raises(ServiceError):
            service.submit(QueryRequest("g", "bfs",
                                        params={"start": 10 ** 9}))
        with pytest.raises(ServiceError):
            QueryRequest("g", "bfs", options={"warp_speed": True})
        with pytest.raises(ServiceError):
            QueryRequest.from_dict({"database": "g"})
        with pytest.raises(ServiceError):
            QueryRequest.from_dict(["not", "a", "dict"])
        service.drain()

    def test_duplicate_registration_and_bad_config(self, db_prefix):
        service = GraphService()
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        with pytest.raises(ServiceError):
            service.add_database(
                "g", db=FileBackedDatabase(db_prefix,
                                           pool_pages=POOL_PAGES))
        with pytest.raises(ServiceError):
            service.add_database("h")  # neither db nor prefix
        with pytest.raises(ServiceError):
            service.remove_database("missing")
        with pytest.raises(ConfigurationError):
            GraphService(max_in_flight=0)
        with pytest.raises(ConfigurationError):
            GraphService(max_queue=-1)
        service.drain()


class TestFaultIsolation:
    def test_fault_query_runs_exclusively_and_cannot_poison(
            self, db_prefix, references):
        """A query whose plan corrupts host reads takes the gate
        exclusively, recovers via checksum re-reads, and the pages it
        touched enter the shared cache only in verified form — the
        next (warm) query is still bit-identical to the reference."""
        service = GraphService(max_in_flight=4)
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        algorithm, params, options = WORKLOADS[1]  # paged bfs
        faulted = service.query(
            "g", algorithm, params=params, options=options,
            faults={"host_corrupt_reads": {"0": 1, "2": 1}})
        # Corruption was injected, caught and recovered.
        assert faulted.fault_stats["integrity_retries"] >= 1
        _assert_matches_reference(faulted, references[1])
        entry_stats = service.stats()["databases"]["g"]
        assert entry_stats["exclusive_queries"] == 1
        # Warm follow-up reads through the shared cache and still
        # matches the cold reference exactly.
        warm = service.query("g", algorithm, params=params,
                             options=options)
        _assert_matches_reference(warm, references[1])
        service.drain()


class TestHTTP:
    @pytest.fixture()
    def server(self, db_prefix):
        service = GraphService(max_in_flight=4)
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        service.drain()

    def test_smoke_health_stats_query(self, server, references):
        client = ServiceClient(
            "http://127.0.0.1:%d" % server.server_address[1])
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["draining"] is False
        algorithm, params, options = WORKLOADS[0]
        result = client.query("g", algorithm, params=params,
                              options=options, include_values=True,
                              query_id="smoke-1")
        reference = references[0]
        assert result["elapsed_seconds"] == reference.elapsed_seconds
        assert result["num_rounds"] == reference.num_rounds
        assert result["query_id"] == "smoke-1"
        assert (result["values"]["level"]
                == np.asarray(reference.values["level"]).tolist())
        stats = client.stats()
        assert stats["completed"] == 1
        assert stats["databases"]["g"]["queries"] == 1

    def test_typed_errors_map_to_status_codes(self, server):
        client = ServiceClient(
            "http://127.0.0.1:%d" % server.server_address[1])
        with pytest.raises(ServiceError):
            client.query("g", "mincut")
        with pytest.raises(ServiceError):
            client.query("missing", "bfs")
        # Unknown paths and malformed bodies are 4xx, not crashes.
        base = "http://127.0.0.1:%d" % server.server_address[1]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/nope")
        assert excinfo.value.code == 404
        request = urllib.request.Request(
            base + "/query", data=b"{broken",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_draining_server_returns_503(self, server):
        server.service.drain(wait=True, timeout=30)
        client = ServiceClient(
            "http://127.0.0.1:%d" % server.server_address[1])
        with pytest.raises(ShutdownError):
            client.query("g", "bfs")
        assert client.healthz()["draining"] is True


class TestObservability:
    def test_stats_and_metrics_shapes(self, db_prefix):
        service = GraphService(max_in_flight=2)
        service.add_database(
            "g", db=FileBackedDatabase(db_prefix,
                                       pool_pages=POOL_PAGES))
        for algorithm, params, options in WORKLOADS[:3]:
            result = service.query("g", algorithm, params=params,
                                   options=options)
            assert result.query_id is not None
            payload = result.to_dict()
            assert payload["query_id"] == result.query_id
            assert "shared_hit_rate" in payload
        stats = service.stats()
        latency = stats["latency_seconds"]
        assert latency["p50"] is not None
        assert latency["p99"] >= latency["p50"]
        assert stats["databases"]["g"]["plan_cache"]["builds"] >= 1
        assert "scatter_lock" in stats["databases"]["g"]
        assert "pool_locks" in stats["databases"]["g"]
        json.dumps(stats)  # snapshot must be JSON-clean
        registry = collect_service_metrics(service)
        assert registry["service.completed"].snapshot() == 3
        assert "service.db.g.shared_hits" in registry
        assert registry["service.latency_p50_seconds"].snapshot() \
            == latency["p50"]
        service.drain()
