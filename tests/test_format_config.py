"""Tests for the slotted-page format configuration (Table 2 arithmetic)."""

import pytest

from repro.errors import ConfigurationError
from repro.format import PageFormatConfig, SIX_BYTE_CONFIGS
from repro.units import GB, KB, MB


class TestWidths:
    def test_record_id_bytes(self):
        config = PageFormatConfig(page_id_bytes=3, slot_bytes=3)
        assert config.record_id_bytes == 6

    def test_adjacency_entry_without_weights(self):
        config = PageFormatConfig(page_id_bytes=2, slot_bytes=2)
        assert config.adjacency_entry_bytes == 4

    def test_adjacency_entry_with_weights(self):
        config = PageFormatConfig(page_id_bytes=2, slot_bytes=2,
                                  weight_bytes=4)
        assert config.adjacency_entry_bytes == 8

    def test_slot_entry_bytes(self):
        config = PageFormatConfig(vid_bytes=6, offset_bytes=4)
        assert config.slot_entry_bytes == 10

    def test_max_page_id(self):
        assert PageFormatConfig(page_id_bytes=2, slot_bytes=2).max_page_id \
            == 65536

    def test_max_slot_number(self):
        assert PageFormatConfig(page_id_bytes=2, slot_bytes=4,
                                page_size=1 * MB).max_slot_number \
            == 4294967296

    def test_max_vertex_id(self):
        config = PageFormatConfig(vid_bytes=6)
        assert config.max_vertex_id == 1 << 48


class TestTable2:
    """The paper's Table 2: three configurations of a 6-byte physical ID."""

    def test_config_2_4(self):
        config = SIX_BYTE_CONFIGS[(2, 4)]
        assert config.max_page_id == 64 * 1024
        assert config.max_slot_number == 4 * 1024 ** 3
        assert config.theoretical_max_page_size() == 80 * GB

    def test_config_3_3(self):
        config = SIX_BYTE_CONFIGS[(3, 3)]
        assert config.max_page_id == 16 * 1024 ** 2
        assert config.max_slot_number == 16 * 1024 ** 2
        assert config.theoretical_max_page_size() == 320 * MB

    def test_config_4_2(self):
        config = SIX_BYTE_CONFIGS[(4, 2)]
        assert config.max_page_id == 4 * 1024 ** 3
        assert config.max_slot_number == 64 * 1024
        assert config.theoretical_max_page_size() == 1.25 * MB

    def test_all_are_six_byte_ids(self):
        for config in SIX_BYTE_CONFIGS.values():
            assert config.record_id_bytes == 6

    def test_min_page_bytes_is_twenty(self):
        """Table 2 multiplies max slots by 20 B (slot + minimal record)."""
        for config in SIX_BYTE_CONFIGS.values():
            assert config.min_page_bytes() == 20


class TestCapacityHelpers:
    def test_record_bytes(self):
        config = PageFormatConfig(page_id_bytes=2, slot_bytes=2)
        assert config.record_bytes(degree=3) == 4 + 3 * 4

    def test_vertex_bytes_includes_slot(self):
        config = PageFormatConfig(page_id_bytes=2, slot_bytes=2)
        assert config.vertex_bytes(3) == config.record_bytes(3) + 10

    def test_max_degree_in_one_page(self):
        config = PageFormatConfig(page_id_bytes=2, slot_bytes=2,
                                  page_size=2 * KB)
        max_degree = config.max_degree_in_one_page()
        assert config.vertex_bytes(max_degree) <= config.page_size
        assert config.vertex_bytes(max_degree + 1) > config.page_size

    def test_weighted_entries_shrink_capacity(self):
        plain = PageFormatConfig(page_id_bytes=2, slot_bytes=2,
                                 page_size=2 * KB)
        weighted = PageFormatConfig(page_id_bytes=2, slot_bytes=2,
                                    page_size=2 * KB, weight_bytes=4)
        assert weighted.max_degree_in_one_page() \
            < plain.max_degree_in_one_page()


class TestValidation:
    def test_rejects_zero_width_ids(self):
        with pytest.raises(ConfigurationError):
            PageFormatConfig(page_id_bytes=0, slot_bytes=2)

    def test_rejects_tiny_pages(self):
        with pytest.raises(ConfigurationError):
            PageFormatConfig(page_id_bytes=2, slot_bytes=2, page_size=8)

    def test_describe_mentions_widths(self):
        config = PageFormatConfig(page_id_bytes=3, slot_bytes=3)
        assert "p=3" in config.describe()
        assert "q=3" in config.describe()
