"""Tests for byte/rate formatting helpers."""

import pytest

from repro import units


class TestConstants:
    def test_binary_prefixes(self):
        assert units.KB == 1024
        assert units.MB == 1024 ** 2
        assert units.GB == 1024 ** 3
        assert units.TB == 1024 ** 4

    def test_gbit_is_decimal(self):
        assert units.GBIT == 10 ** 9


class TestGbpsConversion:
    def test_forty_gbps(self):
        assert units.gbps_to_bytes_per_sec(40) == 5e9

    def test_zero(self):
        assert units.gbps_to_bytes_per_sec(0) == 0.0


class TestFormatBytes:
    def test_plain_bytes(self):
        assert units.format_bytes(17) == "17 B"

    def test_kilobytes(self):
        assert units.format_bytes(1536) == "1.50 KB"

    def test_megabytes(self):
        assert units.format_bytes(64 * units.MB) == "64.00 MB"

    def test_gigabytes(self):
        assert units.format_bytes(80 * units.GB) == "80.00 GB"

    def test_terabytes(self):
        assert units.format_bytes(2 * units.TB) == "2.00 TB"

    def test_zero(self):
        assert units.format_bytes(0) == "0 B"


class TestFormatRate:
    def test_gigabytes_per_second(self):
        assert units.format_rate(6 * units.GB) == "6.00 GB/s"


class TestFormatSeconds:
    def test_microseconds(self):
        assert units.format_seconds(2.5e-6) == "2.5 us"

    def test_milliseconds(self):
        assert units.format_seconds(0.0123) == "12.3 ms"

    def test_seconds(self):
        assert units.format_seconds(153.4) == "153.4 s"

    @pytest.mark.parametrize("value", [1e-9, 1e-3, 0.5, 1.0, 3600.0])
    def test_always_has_unit_suffix(self, value):
        rendered = units.format_seconds(value)
        assert rendered.endswith("s")
