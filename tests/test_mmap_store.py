"""Property tests for the zero-copy (``mode="mmap"``) page store.

The mapped store is only allowed to change *host* costs: for any saved
database the pages it decodes, the run results they produce, and every
simulated counter must be bit-identical to the eager
:func:`~repro.format.io.load_database` path — under dynamic WAL
overlays, under pool eviction pressure, and under injected corruption
(a checksum failure must recover through a verified re-read or raise a
typed :class:`~repro.errors.IntegrityError`; a damaged view must never
decode).
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GTSEngine, PageRankKernel, SSSPKernel
from repro.errors import IntegrityError
from repro.faults import FaultInjector, FaultPlan
from repro.format import PageFormatConfig, build_database
from repro.format.io import FileBackedDatabase, load_database, save_database
from repro.graphgen import Graph
from repro.hardware.specs import scaled_workstation
from repro.units import KB


def _random_database(data, weighted=False):
    num_vertices = data.draw(st.integers(2, 120))
    num_edges = data.draw(st.integers(0, 400))
    seed = data.draw(st.integers(0, 10 ** 6))
    rng = np.random.default_rng(seed)
    graph = Graph.from_edges(
        num_vertices,
        rng.integers(0, num_vertices, size=num_edges),
        rng.integers(0, num_vertices, size=num_edges))
    if weighted:
        graph = graph.with_random_weights(seed=seed)
    config = PageFormatConfig(2, 2, 1 * KB,
                              weight_bytes=4 if weighted else 0)
    return build_database(graph, config, name="mmap-prop"), graph


def _assert_pages_equal(expected, actual):
    assert type(expected) is type(actual)
    assert expected.page_id == actual.page_id
    assert expected.start_vid == actual.start_vid
    for attr in ("adj_pids", "adj_slots", "adj_vids"):
        np.testing.assert_array_equal(getattr(expected, attr),
                                      getattr(actual, attr), err_msg=attr)
    if expected.adj_weights is None:
        assert actual.adj_weights is None
    else:
        np.testing.assert_array_equal(expected.adj_weights,
                                      actual.adj_weights)
    if hasattr(expected, "adj_indptr"):  # SmallPage
        np.testing.assert_array_equal(expected.adj_indptr,
                                      actual.adj_indptr)
    else:  # LargePage
        assert expected.total_degree == actual.total_degree
        assert expected.chunk_index == actual.chunk_index


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_mmap_pages_match_eager_load(data, tmp_path_factory):
    """Every page decoded from the mapping equals its eagerly loaded
    counterpart, field for field, and the decoded arrays never alias
    the mapping (they survive close())."""
    weighted = data.draw(st.booleans())
    db, _ = _random_database(data, weighted=weighted)
    prefix = str(tmp_path_factory.mktemp("mmap") / "db")
    save_database(db, prefix)
    eager = load_database(prefix)
    mapped = FileBackedDatabase(prefix, pool_pages=4, mode="mmap")
    pages = [mapped.page(pid) for pid in range(mapped.num_pages)]
    for pid in range(eager.num_pages):
        _assert_pages_equal(eager.pages[pid], pages[pid])
    assert mapped.mmap_misses == mapped.num_pages  # first touches
    mapped.close()
    # Materialised arrays must outlive the mapping.
    for pid in range(eager.num_pages):
        _assert_pages_equal(eager.pages[pid], pages[pid])


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_mmap_run_results_match_eager(data, tmp_path_factory):
    """Engine runs over the mapped store are bit-identical to eager
    loads — simulated time, values, and counters — even with a pool too
    small for the database (constant eviction re-decodes from the
    mapping)."""
    weighted = data.draw(st.booleans())
    db, graph = _random_database(data, weighted=weighted)
    prefix = str(tmp_path_factory.mktemp("mmap") / "db")
    save_database(db, prefix)
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    start = data.draw(st.integers(0, graph.num_vertices - 1))
    kernel = (lambda: SSSPKernel(start_vertex=start)) if weighted \
        else (lambda: PageRankKernel(iterations=3))
    eager = GTSEngine(load_database(prefix), machine).run(kernel())
    pool_pages = data.draw(st.sampled_from(
        [1, max(1, db.num_pages // 4), 256]))
    mapped_db = FileBackedDatabase(prefix, pool_pages=pool_pages,
                                   mode="mmap")
    mapped = GTSEngine(mapped_db, machine).run(kernel())
    assert mapped.elapsed_seconds == eager.elapsed_seconds
    assert mapped.num_rounds == eager.num_rounds
    for key in eager.values:
        np.testing.assert_array_equal(mapped.values[key],
                                      eager.values[key])
    eager_dict, mapped_dict = eager.to_dict(), mapped.to_dict()
    for key in ("cache_hits", "cache_misses", "storage_bytes_read",
                "pages_streamed", "bytes_to_gpu", "edges_traversed"):
        assert mapped_dict.get(key) == eager_dict.get(key), key
    # The store mode is host-side: only the mmap counters may move.
    assert mapped_dict["mmap_hits"] + mapped_dict["mmap_misses"] > 0
    assert eager_dict["mmap_hits"] == eager_dict["mmap_misses"] == 0
    assert mapped_db.resident_pages() <= pool_pages
    mapped_db.close()


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_mmap_dynamic_overlay_matches_copy_mode(data, tmp_path_factory):
    """A WAL overlay on top of a mapped base behaves exactly like one
    on top of the copy-mode base: overlay pages are rebuilt objects, so
    only untouched base pages are served from the mapping."""
    from repro.dynamic import UpdateBatch, open_dynamic_database

    db, graph = _random_database(data)
    prefix_dir = tmp_path_factory.mktemp("overlay")
    seed = data.draw(st.integers(0, 10 ** 6), label="overlay-seed")
    rng = np.random.default_rng(seed)
    edges = [(int(rng.integers(0, graph.num_vertices)),
              int(rng.integers(0, graph.num_vertices)))
             for _ in range(8)]
    results = []
    for mode in ("copy", "mmap"):
        prefix = str(prefix_dir / ("db-" + mode))
        save_database(db, prefix)
        dyn = open_dynamic_database(prefix, pool_pages=8, store_mode=mode)
        batch = UpdateBatch()
        for src, dst in edges:
            batch.insert_edge(src, dst)
        dyn.apply(batch)
        machine = scaled_workstation(num_gpus=2, num_ssds=1)
        results.append(GTSEngine(dyn, machine).run(
            PageRankKernel(iterations=3)))
    copy_run, mmap_run = results
    assert mmap_run.elapsed_seconds == copy_run.elapsed_seconds
    np.testing.assert_array_equal(mmap_run.values["rank"],
                                  copy_run.values["rank"])


def _save_small(tmp_path, num_vertices=40, num_edges=160, seed=7):
    rng = np.random.default_rng(seed)
    graph = Graph.from_edges(
        num_vertices,
        rng.integers(0, num_vertices, size=num_edges),
        rng.integers(0, num_vertices, size=num_edges))
    db = build_database(graph, PageFormatConfig(2, 2, 1 * KB),
                        name="small")
    prefix = str(tmp_path / "db")
    save_database(db, prefix)
    return prefix, db


def test_injected_corruption_recovers_through_copy_path(tmp_path):
    """With a fault injector attached, mmap parses re-route through the
    mutable copy path: the injected corruption is caught by the
    checksum, retried clean, and the decoded page equals the clean
    one — the damaged bytes never decode."""
    prefix, db = _save_small(tmp_path)
    clean = FileBackedDatabase(prefix, pool_pages=64, mode="mmap")
    reference = clean.page(0)
    mapped = FileBackedDatabase(prefix, pool_pages=64, mode="mmap")
    mapped.attach_fault_injector(
        FaultInjector(FaultPlan(host_corrupt_reads={0: 1})))
    recovered = mapped.page(0)
    _assert_pages_equal(reference, recovered)
    assert mapped.integrity_retries >= 1
    assert mapped.mmap_misses >= 1  # the re-route is booked as a miss
    clean.close()
    mapped.close()


def test_persistent_damage_raises_never_decodes(tmp_path):
    """Bytes damaged on disk fail the mapped region's first-touch
    verification *and* the copy re-read: the typed IntegrityError
    names the page and no poisoned view is ever decoded."""
    prefix, db = _save_small(tmp_path)
    page_size = db.config.page_size
    with open(prefix + ".pages", "r+b") as handle:
        handle.seek(0)
        first = handle.read(1)
        handle.seek(0)
        handle.write(bytes([first[0] ^ 0xFF]))
    mapped = FileBackedDatabase(prefix, pool_pages=64, mode="mmap")
    with pytest.raises(IntegrityError) as excinfo:
        mapped.page(0)
    assert excinfo.value.page_id == 0
    # Undamaged pages keep working through the same handle.
    if mapped.num_pages > 1:
        assert mapped.page(1) is not None
    assert os.path.getsize(prefix + ".pages") == \
        mapped.num_pages * page_size
    mapped.close()


def _tamper_layout(prefix, **overrides):
    meta_path = prefix + ".meta.json"
    with open(meta_path) as handle:
        metadata = json.load(handle)
    metadata["pages_layout"].update(overrides)
    with open(meta_path, "w") as handle:
        json.dump(metadata, handle)


def test_pages_layout_mismatch_refuses_to_map(tmp_path):
    """A wrong ``pages_layout`` stanza (stride, count, checksum algo or
    endianness) raises the typed IntegrityError before any byte of the
    pages file is interpreted — in both store modes and the eager
    loader."""
    prefix, _ = _save_small(tmp_path)
    for overrides in ({"stride": 512}, {"count": 1},
                      {"checksum": "md5"}, {"endianness": "big"}):
        _tamper_layout(prefix, **overrides)
        with pytest.raises(IntegrityError):
            FileBackedDatabase(prefix, pool_pages=4, mode="mmap")
        with pytest.raises(IntegrityError):
            FileBackedDatabase(prefix, pool_pages=4, mode="copy")
        with pytest.raises(IntegrityError):
            load_database(prefix)
        # Restore the stanza for the next override.
        _tamper_layout(prefix, stride=1 * KB, checksum="crc32",
                       endianness="little",
                       count=len(json.load(
                           open(prefix + ".meta.json"))["directory"]))


def test_legacy_metadata_without_layout_still_loads(tmp_path):
    """Databases saved before the stanza existed load unchanged."""
    prefix, _ = _save_small(tmp_path)
    meta_path = prefix + ".meta.json"
    with open(meta_path) as handle:
        metadata = json.load(handle)
    del metadata["pages_layout"]
    with open(meta_path, "w") as handle:
        json.dump(metadata, handle)
    db = FileBackedDatabase(prefix, pool_pages=4, mode="mmap")
    assert db.page(0) is not None
    db.close()


def test_mmap_counters_surface_in_run_summary(tmp_path):
    """RunResult carries the store's hit/miss counters: present in
    summary() and to_dict(), zero for copy mode, moving for mmap."""
    prefix, _ = _save_small(tmp_path)
    machine = scaled_workstation(num_gpus=2, num_ssds=1)
    mapped_db = FileBackedDatabase(prefix, pool_pages=2, mode="mmap")
    mapped = GTSEngine(mapped_db, machine).run(PageRankKernel(iterations=3))
    copy = GTSEngine(FileBackedDatabase(prefix, pool_pages=2),
                     machine).run(PageRankKernel(iterations=3))
    assert "mmap" in mapped.summary()
    mapped_dict = mapped.to_dict()
    assert mapped_dict["mmap_hits"] + mapped_dict["mmap_misses"] > 0
    assert 0.0 <= mapped_dict["mmap_hit_rate"] <= 1.0
    copy_dict = copy.to_dict()
    assert copy_dict["mmap_hits"] == 0 and copy_dict["mmap_misses"] == 0
    assert mapped.elapsed_seconds == copy.elapsed_seconds
    mapped_db.close()
