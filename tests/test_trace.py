"""Tests for event tracing and the Figure 4 timeline renderer."""

import pytest

from repro.core import BFSKernel, GTSEngine, PageRankKernel
from repro.errors import ConfigurationError
from repro.hardware.clock import Resource
from repro.hardware.machine import MachineRuntime
from repro.hardware.specs import paper_workstation
from repro.hardware.trace import (
    busy_fraction,
    render_gpu_timeline,
    render_lane,
    timeline_density,
)
from repro.units import MB


class TestResourceTracing:
    def test_events_recorded_when_tracing(self):
        resource = Resource("r", tracing=True)
        resource.book(0.0, 1.0)
        resource.book(2.0, 1.0)
        assert resource.events == [(0.0, 1.0), (2.0, 3.0)]

    def test_no_events_by_default(self):
        resource = Resource("r")
        resource.book(0.0, 1.0)
        assert resource.events is None

    def test_reset_clears_events(self):
        resource = Resource("r", tracing=True)
        resource.book(0.0, 1.0)
        resource.reset()
        assert resource.events == []


class TestRenderLane:
    def test_full_coverage(self):
        lane = render_lane([(0.0, 10.0)], 0.0, 10.0, width=10)
        assert lane == "=" * 10

    def test_half_coverage(self):
        lane = render_lane([(0.0, 5.0)], 0.0, 10.0, width=10)
        assert lane.startswith("=====")
        assert lane.endswith("....")

    def test_empty_window(self):
        assert render_lane([], 0.0, 0.0, width=8) == "." * 8

    def test_custom_mark(self):
        lane = render_lane([(0.0, 1.0)], 0.0, 1.0, width=4, mark="#")
        assert lane == "####"


class TestBusyFraction:
    def test_simple(self):
        assert busy_fraction([(0.0, 5.0)], 0.0, 10.0) == pytest.approx(0.5)

    def test_clipped_to_window(self):
        assert busy_fraction([(-5.0, 5.0)], 0.0, 10.0) == pytest.approx(0.5)

    def test_empty(self):
        assert busy_fraction([], 0.0, 10.0) == 0.0


class TestEngineTimelines:
    def test_timeline_attached_when_tracing(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine, tracing=True).run(
            BFSKernel(0))
        assert result.timeline is not None
        assert "copy engine" in result.timeline
        assert "stream[0]" in result.timeline

    def test_no_timeline_by_default(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
        assert result.timeline is None

    def test_pagerank_denser_than_bfs(self, rmat_db, machine):
        """The paper's Figure 4 observation, as a measured inequality."""
        def density(kernel):
            runtime = MachineRuntime(machine, num_streams=16,
                                     page_bytes=rmat_db.config.page_size,
                                     tracing=True)
            engine = GTSEngine(rmat_db, machine, num_streams=16,
                               tracing=True, enable_caching=False)
            result = engine.run(kernel)
            lines = [line for line in result.timeline.splitlines()
                     if "stream[" in line]
            return sum(float(line.rsplit("|", 1)[1].rstrip("% "))
                       for line in lines) / len(lines)
        assert density(PageRankKernel(iterations=2)) \
            > density(BFSKernel(0))

    def test_render_requires_tracing(self):
        runtime = MachineRuntime(paper_workstation(), page_bytes=1 * MB)
        with pytest.raises(ConfigurationError):
            render_gpu_timeline(runtime.gpus[0], 0.0, 1.0)

    def test_zero_length_intervals_paint_nothing(self):
        assert render_lane([(0.5, 0.5)], 0.0, 1.0, width=10) == "." * 10
        mixed = render_lane([(0.0, 0.0), (0.5, 1.0)], 0.0, 1.0, width=10)
        assert mixed == "....." + "=" * 5

    def test_timeline_density_helper(self):
        runtime = MachineRuntime(paper_workstation(), num_streams=2,
                                 page_bytes=1 * MB, tracing=True)
        gpu = runtime.gpus[0]
        gpu.book_kernel(gpu.streams.slots[0], 0.0, 1e9, 24.0)
        assert 0.0 < timeline_density(gpu, 0.0, gpu.done_at()) <= 1.0
