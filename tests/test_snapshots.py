"""Snapshot isolation (MVCC) tests: versions, pins, reclamation.

The contract under test: an update batch commits a *new* topology
version while every query keeps the version it pinned at start — same
neighbors, same algorithm output, bit-identical simulated timings —
and versions are reclaimed promptly once their last pin releases,
never while pinned.  Around that core: the writer-preference gate (no
writer starvation), per-query deadlines, and the service's live-update
path end to end (in-process, HTTP, CLI).
"""

import threading
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.concurrency import ReadWriteGate
from repro.core import BFSKernel, GTSEngine, PageRankKernel
from repro.dynamic import (
    DynamicGraphDatabase,
    Snapshot,
    UpdateBatch,
    compact,
    open_dynamic_database,
)
from repro.errors import DeadlineError, ServiceError, UpdateError
from repro.format import build_database
from repro.format.io import save_database
from repro.graphgen import Graph, generate_rmat
from repro.hardware.specs import scaled_workstation
from repro.obs import collect_dynamic_metrics, collect_service_metrics
from repro.service import GraphService, ServiceClient, make_server


def _line_db(config, n=6):
    vids = np.arange(n - 1)
    graph = Graph.from_edges(n, vids, vids + 1)
    return DynamicGraphDatabase(build_database(graph, config))


def _rmat_dynamic(config):
    graph = generate_rmat(8, edge_factor=8, seed=7)
    return DynamicGraphDatabase(build_database(graph, config))


class TestVersionChain:
    def test_apply_bumps_version_and_reclaims_unpinned(self,
                                                       small_config):
        db = _line_db(small_config)
        assert db.topology_version == 0
        report = db.apply(UpdateBatch().insert_edge(0, 3))
        assert report.topology_version == 1
        assert db.topology_version == 1
        # Nothing pinned version 0, so the commit reclaimed it.
        stats = db.mvcc_stats()
        assert stats["version_chain_length"] == 1
        assert stats["reclaimed_versions"] == 1
        assert stats["pinned_snapshots"] == 0

    def test_pinned_snapshot_is_isolated_from_later_commits(
            self, small_config):
        db = _line_db(small_config)
        snap = db.pin()
        assert isinstance(snap, Snapshot)
        assert snap.version == 0
        before = list(snap.effective_neighbors(0))
        db.apply(UpdateBatch().insert_edge(0, 4))
        db.apply(UpdateBatch().delete_edge(1, 2))
        # Head moved; the snapshot did not.
        assert 4 in db.effective_neighbors(0)
        assert list(snap.effective_neighbors(0)) == before
        assert 2 in snap.effective_neighbors(1)
        assert 2 not in db.effective_neighbors(1)
        # The unpinned intermediate version (1) was reclaimed at the
        # next commit; only the pinned v0 and the head survive.
        assert db.mvcc_stats()["version_chain_length"] == 2
        snap.release()
        stats = db.mvcc_stats()
        assert stats["version_chain_length"] == 1
        assert stats["pinned_snapshots"] == 0

    def test_page_at_version_and_reclaimed_version_raises(
            self, small_config):
        db = _line_db(small_config)
        snap = db.pin()
        db.apply(UpdateBatch().insert_edge(0, 5))
        # Explicit version-addressed reads work while pinned.
        page_v0 = db.page(0, version=0)
        page_head = db.page(0)
        assert page_v0.num_edges <= page_head.num_edges
        snap.release()
        with pytest.raises(UpdateError):
            db.page(0, version=0)

    def test_release_is_idempotent_and_context_managed(self,
                                                       small_config):
        db = _line_db(small_config)
        with db.pin() as snap:
            assert not snap.released
        assert snap.released
        snap.release()  # second release is a no-op
        assert db.mvcc_stats()["pinned_snapshots"] == 0

    def test_two_pins_same_version_share_state(self, small_config):
        db = _line_db(small_config)
        first, second = db.pin(), db.pin()
        db.apply(UpdateBatch().insert_edge(0, 2))
        first.release()
        # The version survives until the *last* pin releases.
        assert db.mvcc_stats()["version_chain_length"] == 2
        assert list(second.effective_neighbors(0)) == [1]
        second.release()
        assert db.mvcc_stats()["version_chain_length"] == 1

    def test_engine_runs_bit_identically_on_a_pinned_snapshot(
            self, small_config, machine):
        db = _rmat_dynamic(small_config)
        reference = GTSEngine(db, machine).run(BFSKernel(0))
        snap = db.pin()
        batch = UpdateBatch()
        for i in range(1, 20):
            batch.insert_edge(0, i)
        db.apply(batch)
        # The snapshot's run reproduces the pre-update run exactly.
        result = GTSEngine(snap, machine).run(BFSKernel(0))
        assert result.snapshot_version == 0
        assert result.elapsed_seconds == reference.elapsed_seconds
        np.testing.assert_array_equal(result.values["level"],
                                      reference.values["level"])
        # And the head sees the update.
        head = GTSEngine(db, machine).run(BFSKernel(0))
        assert head.snapshot_version == 1
        assert head.values["level"][19] == 1
        snap.release()

    def test_mvcc_metrics_reach_the_registry(self, small_config):
        db = _line_db(small_config)
        snap = db.pin()
        db.apply(UpdateBatch().insert_edge(0, 3))
        registry = collect_dynamic_metrics(db)
        assert registry["mvcc.pinned_snapshots"].snapshot() == 1
        assert registry["mvcc.oldest_pinned_lag"].snapshot() == 1
        assert registry["mvcc.version_chain_length"].snapshot() == 2
        snap.release()


class TestCompactionWithPins:
    def test_pinned_snapshot_survives_compaction(self, small_config,
                                                 tmp_path):
        vids = np.arange(5)
        graph = Graph.from_edges(6, vids, vids + 1)
        prefix = str(tmp_path / "g")
        save_database(build_database(graph, small_config), prefix)
        db = open_dynamic_database(prefix)
        db.apply(UpdateBatch().insert_edge(0, 4))
        snap = db.pin()
        db.apply(UpdateBatch().delete_edge(0, 4).insert_edge(0, 5))
        report = compact(db, save_prefix=prefix)
        assert report.retained_versions == 1
        # The pinned view still reads the pre-compaction topology from
        # the retired base.
        assert sorted(snap.effective_neighbors(0)) == [1, 4]
        assert sorted(db.effective_neighbors(0)) == [1, 5]
        snap.release()
        assert db.mvcc_stats()["version_chain_length"] == 1
        db.validate()

    def test_quiescent_compaction_retains_nothing(self, small_config):
        db = _line_db(small_config)
        db.apply(UpdateBatch().insert_edge(0, 3))
        report = compact(db)
        assert report.retained_versions == 0
        assert "0 pinned version(s) retained" in report.summary()


class TestWriterPreference:
    def test_writer_is_not_starved_by_a_reader_stream(self):
        gate = ReadWriteGate()
        stop = threading.Event()
        errors = []

        def reader_loop():
            try:
                while not stop.is_set():
                    gate.acquire_read()
                    time.sleep(0.0005)
                    gate.release_read()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        readers = [threading.Thread(target=reader_loop, daemon=True)
                   for _ in range(4)]
        for thread in readers:
            thread.start()
        time.sleep(0.05)  # saturate the gate with overlapping readers
        start = time.perf_counter()
        gate.acquire_write()
        waited = time.perf_counter() - start
        gate.release_write()
        stop.set()
        for thread in readers:
            thread.join(timeout=5)
        assert not errors
        # Writer preference bounds the wait to roughly one reader
        # critical section, not the length of the reader stream.
        assert waited < 5.0
        assert gate.exclusive_acquisitions == 1
        assert gate.writer_wait_seconds >= 0.0
        stats = gate.stats()
        assert set(stats) == {"readers_active", "writers_waiting",
                              "exclusive_acquisitions",
                              "writer_wait_seconds",
                              "reader_waits", "reader_wait_seconds"}
        # Readers queued behind the writer are the ones that clock.
        assert stats["reader_wait_seconds"] >= 0.0

    def test_waiting_writer_blocks_new_readers(self):
        gate = ReadWriteGate()
        gate.acquire_read()
        writer_done = threading.Event()

        def writer():
            gate.acquire_write()
            gate.release_write()
            writer_done.set()

        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        deadline = time.perf_counter() + 5
        while not gate.writers_waiting:
            assert time.perf_counter() < deadline
            time.sleep(0.001)
        late_reader_in = threading.Event()

        def late_reader():
            gate.acquire_read()
            late_reader_in.set()
            gate.release_read()

        reader_thread = threading.Thread(target=late_reader, daemon=True)
        reader_thread.start()
        # The late reader must queue behind the waiting writer.
        assert not late_reader_in.wait(0.1)
        gate.release_read()
        assert writer_done.wait(5)
        assert late_reader_in.wait(5)
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)


class TestDeadlines:
    def test_engine_raises_typed_error_past_deadline(self, rmat_db,
                                                     machine):
        engine = GTSEngine(rmat_db, machine)
        with pytest.raises(DeadlineError) as info:
            engine.run(PageRankKernel(iterations=50),
                       deadline=time.perf_counter() - 0.01,
                       timeout_ms=10.0)
        error = info.value
        assert error.timeout_ms == 10.0
        assert error.elapsed_seconds > 0
        assert error.rounds_completed == 0

    def test_no_deadline_means_no_check(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
        assert result.snapshot_version == 0
        assert result.to_dict()["snapshot_version"] == 0

    def test_service_timeout_ms_maps_to_deadline_error(self,
                                                       small_config):
        service = GraphService(max_in_flight=2)
        service.add_database("g", db=_rmat_dynamic(small_config))
        with pytest.raises(DeadlineError):
            service.query("g", "pagerank",
                          options={"timeout_ms": 1e-4})
        # Deadline failures are counted distinctly, and a sane budget
        # still completes.
        assert service.stats()["deadline_exceeded"] == 1
        result = service.query("g", "bfs",
                               options={"timeout_ms": 60000.0})
        assert result.num_rounds > 0
        service.drain()

    def test_timeout_ms_is_validated(self, small_config):
        service = GraphService(max_in_flight=1)
        service.add_database("g", db=_line_db(small_config))
        with pytest.raises(ServiceError):
            service.query("g", "bfs", options={"timeout_ms": -5})
        service.drain()


class TestServiceUpdates:
    def test_update_commits_new_version_without_blocking_pins(
            self, small_config):
        db = _rmat_dynamic(small_config)
        service = GraphService(max_in_flight=4)
        service.add_database("g", db=db)
        before = service.query("g", "bfs", params={"start": 0})
        assert before.snapshot_version == 0
        batch = UpdateBatch()
        for i in range(1, 30):
            batch.insert_edge(0, i)
        report = service.update("g", batch)
        assert report["topology_version"] == 1
        assert report["edges_inserted"] == 29
        assert report["mvcc"]["version_chain_length"] == 1
        after = service.query("g", "bfs", params={"start": 0})
        assert after.snapshot_version == 1
        assert after.values["level"][29] == 1
        stats = service.stats()
        assert stats["updates_applied"] == 1
        assert stats["databases"]["g"]["updates"] == 1
        assert stats["databases"]["g"]["mvcc"]["pinned_snapshots"] == 0
        registry = collect_service_metrics(service)
        assert registry["service.updates_applied"].snapshot() == 1
        assert registry["service.db.g.updates"].snapshot() == 1
        service.drain()

    def test_update_accepts_dict_batches(self, small_config):
        service = GraphService(max_in_flight=1)
        service.add_database("g", db=_line_db(small_config))
        payload = UpdateBatch().insert_edge(0, 3).to_dict()
        report = service.update("g", payload)
        assert report["edges_inserted"] == 1
        service.drain()

    def test_update_on_static_database_is_typed(self, small_config):
        graph = generate_rmat(7, edge_factor=4, seed=1)
        service = GraphService(max_in_flight=1)
        service.add_database("g", db=build_database(graph,
                                                    small_config))
        with pytest.raises(ServiceError):
            service.update("g", UpdateBatch().insert_edge(0, 1))
        service.drain()

    def test_update_compacts_past_threshold_and_persists(
            self, small_config, tmp_path):
        vids = np.arange(5)
        graph = Graph.from_edges(6, vids, vids + 1)
        prefix = str(tmp_path / "g")
        save_database(build_database(graph, small_config), prefix)
        service = GraphService(max_in_flight=2)
        service.add_database("g", prefix=prefix)
        report = service.update("g",
                                UpdateBatch().insert_edge(0, 5),
                                compact_threshold=1)
        assert report["compacted"] is True
        assert report["compaction"]["folded_batches"] == 1
        service.remove_database("g")
        service.drain()
        # The fold was durable: a fresh open serves it with no WAL.
        reopened = open_dynamic_database(prefix)
        assert 5 in reopened.effective_neighbors(0)
        assert reopened.applied_batches == 0

    def test_queries_pinned_mid_update_stay_consistent(self,
                                                       small_config):
        """Readers racing a writer each observe one committed version."""
        db = _rmat_dynamic(small_config)
        service = GraphService(max_in_flight=4)
        service.add_database("g", db=db)
        machine = scaled_workstation(num_gpus=2, num_ssds=2)
        # Reference results per version, computed serially up front.
        snap0 = db.pin()
        batch = UpdateBatch()
        for i in range(1, 40):
            batch.insert_edge(0, i)
        results, errors = [], []

        def reader():
            try:
                for _ in range(4):
                    results.append(service.query(
                        "g", "bfs", params={"start": 0}))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        service.update("g", batch)
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        reference = {
            0: GTSEngine(snap0, machine).run(BFSKernel(0)),
            1: GTSEngine(db, machine).run(BFSKernel(0)),
        }
        snap0.release()
        seen = set()
        for result in results:
            version = result.snapshot_version
            seen.add(version)
            expected = reference[version]
            assert result.elapsed_seconds == expected.elapsed_seconds
            np.testing.assert_array_equal(
                result.values["level"], expected.values["level"])
        assert seen <= {0, 1}
        service.drain()


class TestLiveHTTP:
    @pytest.fixture()
    def server(self, small_config):
        service = GraphService(max_in_flight=4)
        service.add_database("g", db=_rmat_dynamic(small_config))
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        service.drain()

    def test_update_endpoint_commits_and_queries_see_it(self, server):
        client = ServiceClient(
            "http://127.0.0.1:%d" % server.server_address[1])
        batch = UpdateBatch()
        for i in range(1, 25):
            batch.insert_edge(0, i)
        report = client.update("g", batch)
        assert report["topology_version"] == 1
        assert report["edges_inserted"] == 24
        result = client.query("g", "bfs", params={"start": 0},
                              include_values=True)
        assert result["snapshot_version"] == 1
        assert result["values"]["level"][24] == 1
        stats = client.stats()
        assert stats["updates_applied"] == 1
        assert "mvcc" in stats["databases"]["g"]

    def test_update_endpoint_validates_payload(self, server):
        client = ServiceClient(
            "http://127.0.0.1:%d" % server.server_address[1])
        with pytest.raises(ServiceError):
            client.update("missing", {"ops": []})
        with pytest.raises(ServiceError):
            client._request("/update", {"database": "g"})
        with pytest.raises(ServiceError):
            client._request("/update", {"database": "g",
                                        "batch": {"ops": []},
                                        "bogus": 1})

    def test_timeout_maps_to_504_and_cli_exit_4(self, server, capsys):
        url = "http://127.0.0.1:%d" % server.server_address[1]
        client = ServiceClient(url)
        with pytest.raises(DeadlineError) as info:
            client.query("g", "pagerank",
                         options={"timeout_ms": 1e-4})
        assert info.value.timeout_ms == 1e-4
        assert info.value.elapsed_seconds > 0
        code = cli_main(["query", "--url", url, "--database", "g",
                         "--algorithm", "pagerank",
                         "--timeout-ms", "0.0001"])
        assert code == 4
        assert "deadline exceeded" in capsys.readouterr().err

    def test_cli_update_service_mode(self, server, tmp_path, capsys):
        url = "http://127.0.0.1:%d" % server.server_address[1]
        batch_file = tmp_path / "batch.txt"
        batch_file.write_text("add 0 3\nadd 0 5\n")
        code = cli_main(["update", "--service", url, "--database", "g",
                         "--batch", str(batch_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "topology v" in out and "mvcc" in out
        # Exactly one of --db / --service, and --database is required.
        assert cli_main(["update", "--batch", str(batch_file)]) == 1
        assert cli_main(["update", "--service", url, "--batch",
                         str(batch_file)]) == 1
