"""Social-network analytics on a Twitter-like graph.

Run with::

    python examples/social_network_analysis.py

The paper's introduction motivates GTS with social-network workloads.
This example runs three of them on the Twitter stand-in graph:

* **influence ranking** — PageRank over the follower graph;
* **friend recommendation** — Random Walk with Restart from one user,
  surfacing the most-proximate non-neighbours;
* **broker detection** — sampled betweenness centrality, finding users
  that sit on many shortest paths;
* **community core** — the k-core of the (undirected) follow graph, the
  classic dense-engagement filter;
* **ego network** — one user's neighbourhood and the edges inside it.
"""

import numpy as np

from repro import (
    BCKernel,
    EgonetKernel,
    GTSEngine,
    KCoreKernel,
    PageFormatConfig,
    PageRankKernel,
    RWRKernel,
    build_database,
    generate_twitter_like,
    scaled_workstation,
)
from repro.units import KB


def main():
    graph = generate_twitter_like(num_vertices=8192, seed=10)
    print("Twitter-like graph:", graph)
    db = build_database(
        graph, PageFormatConfig(2, 2, 2 * KB), name="twitter-like")
    engine = GTSEngine(db, scaled_workstation(), num_streams=16)

    # --- Influence ranking -------------------------------------------
    result = engine.run(PageRankKernel(iterations=10))
    ranks = result.values["rank"]
    influencers = np.argsort(ranks)[-5:][::-1]
    print("\nInfluence ranking (PageRank x10): %s simulated"
          % round(result.elapsed_seconds, 6))
    for v in influencers:
        print("  user %5d  rank %.5f  followers(in-deg) %d"
              % (v, ranks[v], graph.in_degrees()[v]))

    # --- Friend recommendation ---------------------------------------
    user = int(influencers[0])
    result = engine.run(RWRKernel(query_vertex=user, iterations=12))
    proximity = result.values["proximity"].copy()
    proximity[user] = 0.0
    proximity[graph.neighbors(user)] = 0.0  # already followed
    suggestions = np.argsort(proximity)[-5:][::-1]
    print("\nRecommendations for user %d (RWR):" % user)
    for v in suggestions:
        print("  suggest user %5d  proximity %.6f" % (v, proximity[v]))

    # --- Broker detection --------------------------------------------
    degrees = graph.out_degrees()
    sources = tuple(int(v) for v in np.argsort(degrees)[-3:])
    result = engine.run(BCKernel(sources=sources))
    centrality = result.values["centrality"]
    brokers = np.argsort(centrality)[-5:][::-1]
    print("\nBrokers (betweenness from %d sampled sources):"
          % len(sources))
    for v in brokers:
        print("  user %5d  centrality %.1f" % (v, centrality[v]))
    print("BC run: %d engine rounds (forward + backward sweeps per "
          "source), %d pages streamed"
          % (result.num_rounds, result.pages_streamed))

    # --- Community core ----------------------------------------------
    sym_db = build_database(
        graph.symmetrised(), PageFormatConfig(2, 2, 2 * KB),
        name="twitter-like-sym")
    sym_engine = GTSEngine(sym_db, scaled_workstation(), num_streams=16)
    for k in (8, 32, 128):
        result = sym_engine.run(KCoreKernel(k=k))
        core = result.values["in_kcore"]
        print("\n%d-core: %d users (%.1f%% of the graph), %d peel rounds"
              % (k, core.sum(), 100 * core.mean(), result.num_rounds))

    # --- Ego network --------------------------------------------------
    result = engine.run(EgonetKernel(ego_vertex=user))
    member = result.values["member"]
    internal = int(result.values["num_induced_edges"][0])
    possible = member.sum() * (member.sum() - 1)
    print("\nEgonet of user %d: %d members, %d internal edges "
          "(density %.4f)"
          % (user, member.sum(), internal,
             internal / possible if possible else 0.0))


if __name__ == "__main__":
    main()
