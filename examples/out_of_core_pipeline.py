"""Out-of-core pipeline: build, persist, reopen lazily, process.

Run with::

    python examples/out_of_core_pipeline.py

The deployment story the paper assumes: convert a raw edge list into the
slotted page format once (offline), store it on the SSD, and run
algorithms against the stored pages.  This example exercises the whole
path with real files — the pages on disk are byte-exact slotted pages —
and finishes with the Section 8 comparison against the earlier
out-of-core systems, X-Stream and GraphChi.
"""

import os
import tempfile

import numpy as np

from repro import (
    BFSKernel,
    PageFormatConfig,
    GTSEngine,
    build_database,
    generate_yahooweb_like,
    scaled_workstation,
)
from repro.baselines.outofcore import GraphChiEngine, XStreamEngine
from repro.format.io import FileBackedDatabase, save_database
from repro.graphgen.io import read_edge_list, write_edge_list
from repro.units import KB, format_bytes, format_seconds

SCALE = 8192


def main():
    workdir = tempfile.mkdtemp(prefix="gts-pipeline-")
    edges_path = os.path.join(workdir, "crawl.txt")
    db_prefix = os.path.join(workdir, "crawl-db")

    # 1. A "crawl" arrives as an edge-list text file.
    graph = generate_yahooweb_like(num_vertices=32768, seed=12)
    write_edge_list(graph, edges_path)
    print("edge list: %s (%s)"
          % (edges_path, format_bytes(os.path.getsize(edges_path))))

    # 2. Offline conversion: parse, build slotted pages, persist.
    loaded = read_edge_list(edges_path)
    db = build_database(loaded, PageFormatConfig(2, 2, 2 * KB),
                        name="crawl")
    meta_path, pages_path = save_database(db, db_prefix)
    print("slotted pages: %s (%s, %d SP + %d LP)"
          % (pages_path, format_bytes(os.path.getsize(pages_path)),
             db.num_small_pages, db.num_large_pages))

    # 3. Reopen lazily: only a bounded pool of pages is ever decoded.
    lazy = FileBackedDatabase(db_prefix, pool_pages=64)
    machine = scaled_workstation()
    start = int(np.argmax(loaded.out_degrees()))
    result = GTSEngine(lazy, machine, num_streams=16).run(
        BFSKernel(start_vertex=start))
    print("\nGTS BFS over the file-backed database:")
    print("  " + result.summary())
    print("  page pool: %d resident of %d total (%d disk parses)"
          % (lazy.resident_pages(), lazy.num_pages, lazy.pool_misses))

    # 4. The Section 8 comparison on the same workload.
    print("\nvs the prior out-of-core engines (simulated seconds):")
    for engine in (XStreamEngine(time_scale=SCALE),
                   GraphChiEngine(time_scale=SCALE)):
        baseline = engine.run_bfs(loaded, start)
        print("  %-9s %10s  (%.1fx GTS; %d full-graph supersteps)"
              % (engine.name,
                 format_seconds(baseline.elapsed_seconds),
                 baseline.elapsed_seconds / result.elapsed_seconds,
                 baseline.num_rounds))
    print("\nwork dir kept at %s" % workdir)


if __name__ == "__main__":
    main()
