"""Cost-based autotuning: pick a configuration, then check it empirically.

Run with::

    python examples/autotune.py

Section 5 presents GTS's cost models "to further improve the performance
later through the cost-based optimization".  This example exercises that
workflow: the optimizer ranks every (strategy, stream-count)
configuration analytically — including ruling out Strategy-P when WA
exceeds a single GPU's memory — and the discrete-event engine then
measures the recommended configuration against the alternatives.
"""

from repro import GTSEngine, PageRankKernel, scaled_workstation
from repro.bench.datasets import dataset_database
from repro.core.optimizer import recommend_configuration
from repro.units import format_seconds

ITERATIONS = 10


def measure(db, machine, strategy, streams):
    engine = GTSEngine(db, machine, strategy=strategy, num_streams=streams)
    return engine.run(PageRankKernel(iterations=ITERATIONS)).elapsed_seconds


def main():
    machine = scaled_workstation(num_gpus=2)

    # --- A graph whose WA fits one GPU: Strategy-P should win ---------
    db = dataset_database("rmat29")
    print("== rmat29 (WA fits a single GPU) ==")
    recommendation = recommend_configuration(
        db, machine, PageRankKernel(), rounds=ITERATIONS)
    print(recommendation.describe())
    best = recommendation.best
    measured_best = measure(db, machine, best.strategy, best.num_streams)
    measured_naive = measure(db, machine, "scalability", 1)
    print("measured with recommendation : %s"
          % format_seconds(measured_best))
    print("measured with naive config   : %s  (%.1fx slower)"
          % (format_seconds(measured_naive),
             measured_naive / measured_best))

    # --- RMAT32: PageRank WA exceeds one GPU, Strategy-P infeasible ---
    db32 = dataset_database("rmat32")
    print("\n== rmat32 (WA needs Strategy-S, as in the paper) ==")
    recommendation = recommend_configuration(
        db32, machine, PageRankKernel(), rounds=ITERATIONS)
    infeasible = sum(1 for c in recommendation.candidates
                     if not c.feasible and c.strategy == "performance")
    print("optimizer ruled out %d of 6 Strategy-P configurations "
          "(WA of %d bytes > %d bytes device memory)"
          % (infeasible, PageRankKernel().wa_bytes(db32.num_vertices),
             machine.gpus[0].device_memory))
    print("recommendation: Strategy-%s with %d streams"
          % (recommendation.best.strategy[0].upper(),
             recommendation.best.num_streams))


if __name__ == "__main__":
    main()
