"""Scaling study: streams, GPUs, strategies and the analytic cost model.

Run with::

    python examples/scaling_study.py

A miniature of Section 4/5/7.5: sweep the engine's concurrency knobs on
one graph and compare the discrete-event engine against the paper's
Equation 1 estimate.
"""

from repro import (
    GTSEngine,
    PageFormatConfig,
    PageRankKernel,
    build_database,
    generate_rmat,
    scaled_workstation,
)
from repro.core.cost_model import inputs_from_run, pagerank_like_cost
from repro.units import KB, format_seconds

ITERATIONS = 5


def main():
    graph = generate_rmat(15, edge_factor=16, seed=30)
    db = build_database(graph, PageFormatConfig(2, 2, 2 * KB),
                        name="rmat15")
    print("graph: %s -> %d pages" % (graph, db.num_pages))

    # --- Streams sweep (Figure 10's mechanism) -----------------------
    print("\nStreams sweep (PageRank x%d, 2 GPUs, Strategy-P):"
          % ITERATIONS)
    machine = scaled_workstation(num_gpus=2)
    for streams in (1, 2, 4, 8, 16, 32):
        result = GTSEngine(db, machine, num_streams=streams).run(
            PageRankKernel(iterations=ITERATIONS))
        print("  %2d streams: %10s" % (
            streams, format_seconds(result.elapsed_seconds)))

    # --- GPU scaling under both strategies (Section 4) ---------------
    print("\nGPU scaling (PageRank x%d, 16 streams):" % ITERATIONS)
    for strategy in ("performance", "scalability"):
        times = []
        for gpus in (1, 2, 4):
            result = GTSEngine(db, scaled_workstation(num_gpus=gpus),
                               strategy=strategy).run(
                PageRankKernel(iterations=ITERATIONS))
            times.append(result.elapsed_seconds)
        speedups = ", ".join(
            "%dx GPU -> %.2fx" % (n, times[0] / t)
            for n, t in zip((1, 2, 4), times))
        print("  Strategy-%s: %s" % (strategy[0].upper(), speedups))
    print("  (Strategy-P buys speed; Strategy-S buys WA capacity.)")

    # --- Cost model vs discrete-event engine (Section 5) -------------
    print("\nEquation 1 vs the discrete-event engine (cache off):")
    machine = scaled_workstation(num_gpus=2)
    result = GTSEngine(db, machine, num_streams=32,
                       enable_caching=False).run(
        PageRankKernel(iterations=ITERATIONS))
    inputs = inputs_from_run(db, machine, PageRankKernel())
    estimate = pagerank_like_cost(inputs, iterations=ITERATIONS)
    print("  analytic estimate : %s" % format_seconds(estimate))
    print("  simulated engine  : %s"
          % format_seconds(result.elapsed_seconds))
    print("  ratio             : %.2fx"
          % (result.elapsed_seconds / estimate))


if __name__ == "__main__":
    main()
