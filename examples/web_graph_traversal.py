"""Traversal workloads on a high-diameter web graph, beyond main memory.

Run with::

    python examples/web_graph_traversal.py

This reproduces the regime the paper cares most about: a graph whose
topology does *not* fit the machine's (scaled) main memory, so pages
stream from the simulated SSDs; BFS-like algorithms touch only the
frontier's pages per level and the device-memory page cache earns its
keep across levels.
"""

import numpy as np

from repro import (
    BFSKernel,
    GTSEngine,
    PageFormatConfig,
    SSSPKernel,
    WCCKernel,
    build_database,
    generate_yahooweb_like,
    scaled_workstation,
)
from repro.units import KB, format_bytes


def main():
    graph = generate_yahooweb_like(num_vertices=131072, seed=12)
    print("YahooWeb-like graph:", graph)

    config = PageFormatConfig(2, 2, 2 * KB)
    db = build_database(graph, config, name="yahooweb-like")
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    # Apply the paper's out-of-core buffer policy (20% of the graph in
    # main memory, the rest on SSD) so pages genuinely stream from
    # storage — the regime the paper's RMAT31/32 runs exercise.
    buffer_bytes = int(0.2 * db.topology_bytes())
    print("topology %s, main-memory page buffer capped at %s -> pages "
          "stream from the simulated SSDs"
          % (format_bytes(db.topology_bytes()), format_bytes(buffer_bytes)))

    start = int(np.argmax(graph.out_degrees()))

    # --- Reachability ------------------------------------------------
    engine = GTSEngine(db, machine, num_streams=16,
                       mm_buffer_bytes=buffer_bytes)
    bfs = engine.run(BFSKernel(start_vertex=start))
    levels = bfs.values["level"]
    print("\nBFS: %s" % bfs.summary())
    print("  depth %d over %d levels; %d pages from storage, "
          "%d from buffer, %d from GPU cache (hit rate %.1f%%)"
          % (levels.max(), bfs.num_rounds,
             sum(r.pages_from_storage for r in bfs.rounds),
             sum(r.pages_from_buffer for r in bfs.rounds),
             bfs.cache_hits, 100 * bfs.cache_hit_rate))

    # --- Shortest paths over crawl-cost weights ----------------------
    weighted = graph.with_random_weights(low=1.0, high=4.0, seed=3)
    weighted_db = build_database(
        weighted, PageFormatConfig(2, 2, 2 * KB, weight_bytes=4),
        name="yahooweb-like-weighted")
    sssp = GTSEngine(weighted_db, machine).run(
        SSSPKernel(start_vertex=start))
    dist = sssp.values["distance"]
    finite = np.isfinite(dist)
    print("\nSSSP: %s" % sssp.summary())
    print("  reached %d vertices, max distance %.1f"
          % (finite.sum(), dist[finite].max()))

    # --- Connected components (undirected view) ----------------------
    sym_db = build_database(graph.symmetrised(), config,
                            name="yahooweb-like-sym")
    wcc = GTSEngine(sym_db, machine).run(WCCKernel())
    labels = wcc.values["component"]
    unique, counts = np.unique(labels, return_counts=True)
    print("\nCC: %s" % wcc.summary())
    print("  %d weakly-connected components; giant component covers "
          "%.1f%% of vertices"
          % (len(unique), 100 * counts.max() / graph.num_vertices))


if __name__ == "__main__":
    main()
