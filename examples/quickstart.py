"""Quickstart: build a graph, stream it through GTS, inspect the results.

Run with::

    python examples/quickstart.py

This walks the whole pipeline in one page of code: generate an R-MAT
graph, lay it out as slotted pages, assemble the (simulated) two-GPU
workstation, and run BFS and PageRank through the streaming engine.
"""

import numpy as np

from repro import (
    BFSKernel,
    GTSEngine,
    PageFormatConfig,
    PageRankKernel,
    build_database,
    generate_rmat,
    scaled_workstation,
)
from repro.units import KB, format_bytes


def main():
    # 1. A scale-14 R-MAT graph: 16K vertices, 256K edges, power-law.
    graph = generate_rmat(14, edge_factor=16, seed=7)
    print("graph:", graph)

    # 2. Lay it out as slotted pages: the paper's (2,2) configuration
    #    with 2 KB pages (the 1/8192-scale analogue of its setup).
    config = PageFormatConfig(page_id_bytes=2, slot_bytes=2,
                              page_size=2 * KB)
    db = build_database(graph, config, name="rmat14")
    print("database: %d small pages, %d large pages, %s topology"
          % (db.num_small_pages, db.num_large_pages,
             format_bytes(db.topology_bytes())))

    # 3. The simulated machine: 2 GPUs, 2 PCI-E SSDs, scaled capacities.
    machine = scaled_workstation(num_gpus=2, num_ssds=2)

    # 4. BFS from the busiest vertex (level-by-level page streaming).
    start = int(np.argmax(graph.out_degrees()))
    engine = GTSEngine(db, machine, strategy="performance", num_streams=16)
    bfs = engine.run(BFSKernel(start_vertex=start))
    levels = bfs.values["level"]
    print()
    print(bfs.summary())
    print("  reachable vertices: %d / %d, depth %d"
          % ((levels >= 0).sum(), graph.num_vertices, levels.max()))

    # 5. Ten PageRank iterations (whole-topology streaming per round).
    pagerank = engine.run(PageRankKernel(iterations=10))
    ranks = pagerank.values["rank"]
    print()
    print(pagerank.summary())
    top = np.argsort(ranks)[-5:][::-1]
    print("  top-5 vertices by rank:",
          ", ".join("v%d (%.5f)" % (v, ranks[v]) for v in top))
    print("  transfer:kernel time ratio = 1:%.1f"
          % (1.0 / pagerank.transfer_to_kernel_ratio))


if __name__ == "__main__":
    main()
