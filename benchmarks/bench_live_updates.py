"""Live-update benchmark: reader latency under a concurrent writer.

MVCC's promise is that update batches commit new topology versions
without stalling readers.  This benchmark measures the cost of keeping
that promise: the host wall-clock p95 of a stream of queries against an
*idle* database versus the same stream with a writer thread committing
update batches (and periodically compacting) the whole time.

Protocol
--------
One file-backed dynamic database; two phases with a fresh service each
(same cache-cold start):

1. **idle** — ``--queries`` mixed paged queries at ``--concurrency``,
   no writer.  This is the baseline p95.
2. **live** — the identical query stream while a writer loop applies
   ``--batch-edges``-edge insert batches through
   :meth:`~repro.service.service.GraphService.update`, compacting past
   ``--compact-threshold`` bytes.  The writer pauses ``--writer-pause``
   seconds between commits: the gate measures MVCC's *blocking* cost
   (pins, copy-on-write, reclamation), not the GIL saturation of a
   zero-think-time CPU loop, and a paced writer still commits dozens
   of batches across the read window.

Gate: ``live_p95 <= READER_P95_CEILING * idle_p95`` — snapshot pins,
copy-on-write commits and version reclamation may tax readers at most
50 % at p95.  Phases run as ``--trials`` *paired* (idle, live) trials
and the gate takes the best ratio: host p95 on a shared runner is
dominated by scheduler noise, and the best pair is the one measuring
MVCC rather than the neighbours.  The ratio also lands in the history
log under ``live.reader_p95_ratio`` so drift is visible across runs;
sanity checks ride along (every query completed, at least one version
was reclaimed, the writer actually committed during the window).

Usage::

    PYTHONPATH=src python benchmarks/bench_live_updates.py          # full
    PYTHONPATH=src python benchmarks/bench_live_updates.py --quick  # CI
"""

import argparse
import datetime
import json
import os
import platform
import shutil
import sys
import tempfile
import threading
import time

import numpy as np

from repro.dynamic import UpdateBatch
from repro.format import PageFormatConfig, build_database
from repro.format.io import save_database
from repro.graphgen import generate_rmat
from repro.service import GraphService
from repro.units import KB

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(ROOT, "BENCH_live_updates.json")
DEFAULT_HISTORY = os.path.join(ROOT, "BENCH_history.jsonl")

#: The gate: reader p95 with a concurrent writer may be at most this
#: multiple of the idle p95.
READER_P95_CEILING = 1.5

#: (algorithm, params) round-robin read mix; paged execution so every
#: query actually reads pages (the path MVCC versioning touches).
WORKLOAD = [
    ("bfs", {"start": 0}),
    ("pagerank", {"iterations": 3}),
    ("cc", {}),
    ("degree", {}),
]


def build_dataset(tmp, scale, edge_factor, seed):
    graph = generate_rmat(scale, edge_factor=edge_factor, seed=seed)
    db = build_database(graph, PageFormatConfig(2, 2, 1 * KB),
                        name="rmat%d" % scale)
    prefix = os.path.join(tmp, "rmat%d" % scale)
    save_database(db, prefix)
    return prefix, {"num_vertices": db.num_vertices,
                    "num_edges": db.num_edges,
                    "num_pages": db.num_pages}


def _quantile(ordered, fraction):
    if not ordered:
        return None
    index = min(len(ordered) - 1,
                int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_phase(prefix, num_queries, concurrency, writer=False,
              batch_edges=64, compact_threshold=None, seed=7,
              writer_pause=0.005):
    """One phase: the query stream, optionally against a live writer.

    Returns (reader stats dict, per-query latencies).
    """
    service = GraphService(max_in_flight=concurrency,
                           max_queue=num_queries)
    db = service.add_database("g", prefix=prefix)
    num_vertices = db.num_vertices
    rng = np.random.default_rng(seed)
    latencies = []
    latency_lock = threading.Lock()
    failures = []
    versions = []
    stop_writer = threading.Event()
    updates = {"committed": 0, "compactions": 0}

    def writer_loop():
        while not stop_writer.is_set():
            batch = UpdateBatch()
            for _ in range(batch_edges):
                u = int(rng.integers(0, num_vertices))
                v = int(rng.integers(0, num_vertices))
                if u == v:
                    v = (v + 1) % num_vertices
                batch.insert_edge(u, v)
            report = service.update("g", batch,
                                    compact_threshold=compact_threshold)
            updates["committed"] += 1
            if report["compacted"]:
                updates["compactions"] += 1
            if writer_pause:
                stop_writer.wait(writer_pause)

    def reader(index):
        algorithm, params = WORKLOAD[index % len(WORKLOAD)]
        options = {"execution": "paged"}
        start = time.perf_counter()
        try:
            result = service.query("g", algorithm, params=dict(params),
                                   options=options)
        except Exception as exc:
            failures.append(exc)
            return
        wall = time.perf_counter() - start
        with latency_lock:
            latencies.append(wall)
            versions.append(result.snapshot_version)

    writer_thread = None
    if writer:
        writer_thread = threading.Thread(target=writer_loop,
                                         daemon=True)
        writer_thread.start()
    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(num_queries)]
    phase_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    phase_wall = time.perf_counter() - phase_start
    if writer_thread is not None:
        stop_writer.set()
        writer_thread.join(timeout=120)
    mvcc = db.mvcc_stats() if hasattr(db, "mvcc_stats") else {}
    service.remove_database("g")
    service.drain()
    ordered = sorted(latencies)
    stats = {
        "completed": len(latencies),
        "failed": len(failures),
        "wall_seconds": phase_wall,
        "p50_seconds": _quantile(ordered, 0.50),
        "p95_seconds": _quantile(ordered, 0.95),
        "p99_seconds": _quantile(ordered, 0.99),
        "updates_committed": updates["committed"],
        "compactions": updates["compactions"],
        "versions_seen": sorted(set(versions)),
        "reclaimed_versions": mvcc.get("reclaimed_versions", 0),
        "final_chain_length": mvcc.get("version_chain_length", 1),
    }
    if failures:
        stats["first_failure"] = repr(failures[0])
    return stats


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="reader latency under concurrent MVCC updates")
    parser.add_argument("--scale", type=int, default=10,
                        help="RMAT scale (default 10)")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--queries", type=int, default=48,
                        help="queries per phase (default 48)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="reader in-flight width (default 4)")
    parser.add_argument("--batch-edges", type=int, default=64,
                        help="edges per writer batch (default 64)")
    parser.add_argument("--compact-threshold", type=int,
                        default=256 * KB,
                        help="fold deltas past this many bytes "
                             "(default 256 KiB)")
    parser.add_argument("--writer-pause", type=float, default=0.005,
                        help="seconds the writer idles between "
                             "commits (default 0.005)")
    parser.add_argument("--trials", type=int, default=3,
                        help="paired (idle, live) trials; the gate "
                             "takes the best ratio (default 3)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        metavar="JSONL",
                        help="append a schema-versioned record to this "
                             "benchmark-history log (see repro.obs."
                             "history); '' disables the append")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: scale 9, 32 queries, "
                             "concurrency 2, 10 ms writer pause")
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = 9
        args.queries = min(args.queries, 32)
        args.concurrency = 2
        # The quick read window is well under a second; a 5 ms pause
        # leaves the writer's duty cycle (and GIL share) too high for
        # a stable p95 on a 2-wide reader pool.
        args.writer_pause = max(args.writer_pause, 0.01)

    tmp = tempfile.mkdtemp(prefix="bench_live_")
    report = {
        "benchmark": "live_updates",
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "protocol": {
            "queries": args.queries,
            "concurrency": args.concurrency,
            "batch_edges": args.batch_edges,
            "compact_threshold": args.compact_threshold,
            "gate": "live p95 <= %.2f x idle p95" % READER_P95_CEILING,
        },
        "quick": args.quick,
    }

    try:
        print("building RMAT%d (edge_factor=%d, seed=%d)..."
              % (args.scale, args.edge_factor, args.seed))
        prefix, info = build_dataset(tmp, args.scale, args.edge_factor,
                                     args.seed)
        report["dataset"] = info

        ok = True
        trials = []
        best = None
        for trial in range(max(1, args.trials)):
            # Fresh WAL/prefix copies per trial so one trial's writes
            # cannot warm or dirty another's baseline.
            idle_prefix = os.path.join(tmp, "idle%d" % trial)
            live_prefix = os.path.join(tmp, "live%d" % trial)
            for target in (idle_prefix, live_prefix):
                for ext in (".meta.json", ".pages"):
                    shutil.copyfile(prefix + ext, target + ext)
            print("trial %d/%d: idle reader stream (%d queries, "
                  "c=%d)..." % (trial + 1, args.trials, args.queries,
                                args.concurrency))
            idle = run_phase(idle_prefix, args.queries,
                             args.concurrency, writer=False,
                             seed=args.seed)
            print("trial %d/%d: reader stream against a live "
                  "writer..." % (trial + 1, args.trials))
            live = run_phase(live_prefix, args.queries,
                             args.concurrency, writer=True,
                             batch_edges=args.batch_edges,
                             compact_threshold=args.compact_threshold,
                             seed=args.seed,
                             writer_pause=args.writer_pause)
            if idle["failed"] or live["failed"]:
                print("FAIL: queries failed (idle=%d, live=%d): %s"
                      % (idle["failed"], live["failed"],
                         live.get("first_failure",
                                  idle.get("first_failure"))),
                      file=sys.stderr)
                ok = False
            ratio = None
            if idle["p95_seconds"] and live["p95_seconds"]:
                ratio = live["p95_seconds"] / idle["p95_seconds"]
            trials.append({"idle": idle, "live": live,
                           "reader_p95_ratio": ratio})
            if ratio is not None and (
                    best is None or ratio < best["reader_p95_ratio"]):
                best = trials[-1]
        report["trials"] = trials
        if best is None:
            print("FAIL: no p95 measured", file=sys.stderr)
            ok = False
            idle = live = None
            ratio = None
        else:
            idle, live = best["idle"], best["live"]
            ratio = best["reader_p95_ratio"]
            report["idle"] = idle
            report["live_phase"] = live
            report["live"] = {
                "reader_p95_ratio": ratio,
                "updates_committed": live["updates_committed"],
                "reclaimed_versions": live["reclaimed_versions"],
            }
        if ratio is not None and ratio > READER_P95_CEILING:
            print("FAIL: reader p95 under writer is %.2fx idle "
                  "(ceiling %.2fx): %.4fs vs %.4fs"
                  % (ratio, READER_P95_CEILING, live["p95_seconds"],
                     idle["p95_seconds"]), file=sys.stderr)
            ok = False
        if ok and live is not None and not live["updates_committed"]:
            print("FAIL: the writer committed nothing — the live "
                  "phase measured an idle database", file=sys.stderr)
            ok = False
        if ok and live is not None and not live["reclaimed_versions"]:
            print("FAIL: no version was ever reclaimed — pins leak",
                  file=sys.stderr)
            ok = False

        report["gate_passed"] = bool(ok)
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print("wrote %s" % args.out)
        if args.history:
            from repro.obs.history import append_history
            append_history(
                args.history, report["benchmark"], report,
                meta={"quick": args.quick, "scale": args.scale,
                      "queries": args.queries,
                      "concurrency": args.concurrency,
                      "batch_edges": args.batch_edges,
                      "seed": args.seed},
                generated=report["generated"])
            print("appended history record to %s" % args.history)
        if not ok:
            print("FAIL: live-updates gate", file=sys.stderr)
            return 1
        print("gate passed: reader p95 %.2fx idle (ceiling %.2fx), "
              "%d update(s) committed, %d version(s) reclaimed"
              % (ratio, READER_P95_CEILING, live["updates_committed"],
                 live["reclaimed_versions"]))
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
