"""Figure 10: elapsed time versus the number of GPU streams."""

from repro.bench.experiments import figure10_streams


def test_figure10_bfs(report):
    report(figure10_streams, "fig10_streams_bfs", "BFS")


def test_figure10_pagerank(report):
    report(figure10_streams, "fig10_streams_pagerank", "PageRank")
