"""Figure 7: GTS vs MTGL / Galois / Ligra / Ligra+ (BFS, PageRank)."""

from repro.bench.experiments import figure7_cpu


def test_figure7_bfs(report):
    report(figure7_cpu, "fig7_cpu_bfs", "BFS")


def test_figure7_pagerank(report):
    report(figure7_cpu, "fig7_cpu_pagerank", "PageRank")
