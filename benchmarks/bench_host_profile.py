"""Host-profiling overhead and coverage gate.

PR 6 threaded :class:`repro.obs.host.HostProfiler` hooks through the
engine's setup/round loop, the plan builder, the stream scheduler and
the page stores.  This script verifies two properties:

* **Disabled is free.**  With ``host_profile=False`` (the default) the
  engine must run the same batched 10-iteration PageRank within a small
  tolerance of the wall-clock baseline (``BENCH_wallclock.json``,
  produced on the same host by ``benchmarks/bench_wallclock.py``) —
  the profiling hooks are ``is not None`` checks and nothing else.
* **Enabled is honest.**  A profiled run must (a) leave the simulated
  results bit-identical, and (b) produce a :class:`HostProfile` whose
  top-level phases cover at least ``--min-coverage`` (default 95%) of
  the measured wall-clock — otherwise the timers are missing a hot
  path and the profile lies by omission.

Both configurations use the ``bench_wallclock`` protocol (one engine
per mode, 1 cold + N warm runs, best-of-warm headline, p50/p95 over the
warm repeats).  The profiled mode's overhead over the disabled mode is
reported for information — that is the price of *asking* for a profile,
not of carrying the hooks.

Artifacts: the JSON report (``BENCH_host_profile.json``, whose flat
``metrics`` map feeds ``repro obs compare`` directly), a collapsed-stack
flamegraph of the last profiled run, the host-profile JSON itself, and
one record appended to ``BENCH_history.jsonl``.

Usage::

    PYTHONPATH=src python benchmarks/bench_host_profile.py          # full
    PYTHONPATH=src python benchmarks/bench_host_profile.py --quick  # smoke
"""

import argparse
import datetime
import json
import os
import platform
import sys
import time

import numpy as np

from repro.core import GTSEngine
from repro.core.kernels.pagerank import PageRankKernel
from repro.format import PageFormatConfig, build_database
from repro.graphgen import generate_rmat
from repro.hardware.specs import scaled_workstation

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(ROOT, "BENCH_host_profile.json")
DEFAULT_BASELINE = os.path.join(ROOT, "BENCH_wallclock.json")
DEFAULT_HISTORY = os.path.join(ROOT, "BENCH_history.jsonl")


def run_mode(db, machine, iterations, repeats, host_profile):
    """One engine, ``1 + repeats`` batched runs; mirrors bench_wallclock."""
    from bench_wallclock import summarize_samples

    engine = GTSEngine(db, machine, execution="batched",
                       host_profile=host_profile)
    wall = []
    result = None
    for _ in range(1 + repeats):
        kernel = PageRankKernel(iterations=iterations)
        start = time.perf_counter()
        result = engine.run(kernel)
        wall.append(time.perf_counter() - start)
    return summarize_samples(wall), result


def load_baseline(path):
    """The checked-in batched best-of-warm, or None when unavailable."""
    try:
        with open(path) as handle:
            report = json.load(handle)
        return report["kernels"]["pagerank"]["batched"]["best_seconds"]
    except (OSError, KeyError, ValueError):
        return None


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="overhead + coverage gate for the host profiler")
    parser.add_argument("--scale", type=int, default=18)
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="allowed fractional regression of the "
                             "disabled config vs the baseline "
                             "(default 0.01 — the hooks must be free)")
    parser.add_argument("--min-coverage", type=float, default=0.95,
                        help="profiled runs: minimum fraction of wall-"
                             "clock inside top-level phases")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="bench_wallclock report to gate against")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--flamegraph", default=None, metavar="PATH",
                        help="write the last profiled run's collapsed-"
                             "stack flamegraph here")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="write the last profiled run's host-profile "
                             "JSON here")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        metavar="JSONL",
                        help="append a schema-versioned record to this "
                             "benchmark-history log (see repro.obs."
                             "history); '' disables the append")
    parser.add_argument("--quick", action="store_true",
                        help="smoke: scale 13, 2 repeats, 5 iterations, "
                             "self-measured baseline only")
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = min(args.scale, 13)
        args.repeats = min(args.repeats, 2)
        args.iterations = min(args.iterations, 5)

    config = PageFormatConfig(page_id_bytes=4, slot_bytes=2, page_size=2048)
    print("building RMAT%d (edge_factor=%d, seed=%d)..."
          % (args.scale, args.edge_factor, args.seed))
    graph = generate_rmat(args.scale, edge_factor=args.edge_factor,
                          seed=args.seed)
    db = build_database(graph, config)
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    print("  %d vertices, %d edges, %d pages"
          % (db.num_vertices, graph.num_edges, db.num_pages))

    print("== disabled (host_profile=False) ==")
    disabled_times, disabled_result = run_mode(
        db, machine, args.iterations, args.repeats, False)
    print("  cold %.2fs  warm %s" % (disabled_times["cold_seconds"],
                                     disabled_times["warm_seconds"]))
    print("== profiled (host_profile=True) ==")
    profiled_times, profiled_result = run_mode(
        db, machine, args.iterations, args.repeats, True)
    print("  cold %.2fs  warm %s" % (profiled_times["cold_seconds"],
                                     profiled_times["warm_seconds"]))

    identical = (
        disabled_result.elapsed_seconds == profiled_result.elapsed_seconds
        and all(np.array_equal(disabled_result.values[k],
                               profiled_result.values[k])
                for k in disabled_result.values))
    profile = profiled_result.host_profile
    assert profile is not None
    coverage = profile.coverage()
    print(profile.summary())

    # The quick smoke runs a different scale than the checked-in
    # baseline, so it can only gate against itself.
    baseline_best = None if args.quick else load_baseline(args.baseline)
    gated_against = ("baseline" if baseline_best is not None
                     else "self (no comparable baseline)")
    reference = (baseline_best if baseline_best is not None
                 else disabled_times["best_seconds"])
    overhead = disabled_times["best_seconds"] / reference - 1.0
    profiled_overhead = (profiled_times["best_seconds"]
                         / disabled_times["best_seconds"] - 1.0)
    print("disabled overhead vs %s: %+.1f%% (gate +%.0f%%); "
          "profiled overhead vs disabled: %+.1f%% (informational); "
          "coverage %.1f%% (gate >= %.0f%%)"
          % (gated_against, overhead * 100, args.tolerance * 100,
             profiled_overhead * 100, coverage * 100,
             args.min_coverage * 100))

    gate_passed = (overhead <= args.tolerance and identical
                   and coverage >= args.min_coverage)
    metrics = {
        "disabled_best_seconds": disabled_times["best_seconds"],
        "disabled_p95_seconds": disabled_times["p95_seconds"],
        "profiled_best_seconds": profiled_times["best_seconds"],
        "profiled_p95_seconds": profiled_times["p95_seconds"],
        "disabled_overhead": round(overhead, 4),
        "profiled_overhead": round(profiled_overhead, 4),
    }
    metrics.update(profile.to_metrics())
    report = {
        "benchmark": "host_profile",
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "dataset": {
            "generator": "rmat", "scale": args.scale,
            "edge_factor": args.edge_factor, "seed": args.seed,
            "num_pages": int(db.num_pages),
        },
        "machine": "scaled_workstation(num_gpus=2, num_ssds=2)",
        "protocol": {
            "kernel": "pagerank", "iterations": args.iterations,
            "execution": "batched", "repeats": args.repeats,
            "timing": "1 cold + N warm runs per mode on one engine; "
                      "overhead compares best-of-warm",
        },
        "quick": args.quick,
        "disabled": disabled_times,
        "profiled": profiled_times,
        "baseline_best_seconds": baseline_best,
        "gated_against": gated_against,
        "tolerance": args.tolerance,
        "min_coverage": args.min_coverage,
        "bit_identical": bool(identical),
        "metrics": metrics,
        "profile": profile.to_dict(),
        "gate_passed": bool(gate_passed),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print("wrote %s" % args.out)
    if args.flamegraph:
        from repro.obs.host import write_flamegraph
        write_flamegraph(profile, args.flamegraph)
        print("wrote %s" % args.flamegraph)
    if args.profile_out:
        from repro.obs.host import write_host_profile
        write_host_profile(profile, args.profile_out)
        print("wrote %s" % args.profile_out)
    if args.history:
        from repro.obs.history import append_history
        append_history(
            args.history, report["benchmark"], {"metrics": metrics},
            meta={"quick": args.quick, "scale": args.scale,
                  "edge_factor": args.edge_factor, "seed": args.seed,
                  "iterations": args.iterations,
                  "repeats": args.repeats},
            generated=report["generated"])
        print("appended history record to %s" % args.history)
    if not identical:
        print("FAIL: profiled run is not bit-identical to disabled",
              file=sys.stderr)
        return 1
    if coverage < args.min_coverage:
        print("FAIL: phase coverage %.1f%% below %.0f%% — the timers "
              "are missing a hot path"
              % (coverage * 100, args.min_coverage * 100),
              file=sys.stderr)
        return 1
    if overhead > args.tolerance:
        print("FAIL: disabled hooks cost %+.1f%% (> %.0f%% gate)"
              % (overhead * 100, args.tolerance * 100), file=sys.stderr)
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
