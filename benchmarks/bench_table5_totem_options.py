"""Table 5 (Appendix C): TOTEM's GPU:CPU partition ratios."""

from repro.bench.experiments import table5_totem_partitions


def test_table5_totem_partitions(report):
    report(table5_totem_partitions, "table5_totem_options")
