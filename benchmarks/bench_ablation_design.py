"""Ablations A2/A3: GPU-count scaling and main-memory buffer sizing."""

from repro.bench.experiments import (
    ablation_buffering,
    ablation_gpu_scaling,
    ablation_ssd_scaling,
)


def test_ablation_gpu_scaling(report):
    report(ablation_gpu_scaling, "ablation_gpu_scaling")


def test_ablation_ssd_scaling(report):
    report(ablation_ssd_scaling, "ablation_ssd_scaling")


def test_ablation_buffering(report):
    report(ablation_buffering, "ablation_buffering")
