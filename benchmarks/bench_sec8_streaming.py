"""Section 8: GTS vs X-Stream / GraphChi out-of-core streaming."""

from repro.bench.experiments import section8_streaming


def test_section8_bfs(report):
    report(section8_streaming, "sec8_streaming_bfs", "BFS")


def test_section8_pagerank(report):
    report(section8_streaming, "sec8_streaming_pagerank", "PageRank")
