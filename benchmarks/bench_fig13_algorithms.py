"""Figure 13 (Appendix D): SSSP, CC and BC comparisons."""

from repro.bench.experiments import figure13_algorithms


def test_figure13_sssp(report):
    report(figure13_algorithms, "fig13_sssp", "SSSP")


def test_figure13_cc(report):
    report(figure13_algorithms, "fig13_cc", "CC")


def test_figure13_bc(report):
    report(figure13_algorithms, "fig13_bc", "BC")
