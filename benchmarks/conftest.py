"""Shared plumbing for the per-table/per-figure benchmark suite.

Each ``bench_*`` module regenerates one artifact of the paper's
evaluation section.  pytest-benchmark times the full experiment (one
round — these are end-to-end experiment harnesses, not microbenchmarks),
and the rendered table is printed and saved under ``results/``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "results")


@pytest.fixture
def report(benchmark):
    """Run an experiment function once under pytest-benchmark and save
    every table it returns."""

    def _run(experiment_fn, filename, *args, **kwargs):
        outcome = benchmark.pedantic(
            experiment_fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        tables = outcome if isinstance(outcome, tuple) else (outcome,)
        for index, table in enumerate(tables):
            suffix = "" if len(tables) == 1 else "_%d" % index
            table.show()
            table.save(RESULTS_DIR, "%s%s.txt" % (filename, suffix))
        return tables

    return _run
