"""Figure 14 (Appendix E): micro-level techniques versus graph density."""

from repro.bench.experiments import figure14_micro


def test_figure14_bfs(report):
    report(figure14_micro, "fig14_micro_bfs", "BFS")


def test_figure14_pagerank(report):
    report(figure14_micro, "fig14_micro_pagerank", "PageRank")
