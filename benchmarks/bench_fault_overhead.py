"""Zero-fault overhead gate for the fault-injection hooks.

PR 4 threaded fault-injection hooks through the storage array, the
stream scheduler and the engine's round loop.  This script verifies the
hooks are pay-for-use: with **no** :class:`~repro.faults.FaultPlan`
installed the engine must run the same batched 10-iteration PageRank
within a small tolerance of the PR 3 wall-clock baseline
(``BENCH_wallclock.json``, produced on the same host by
``benchmarks/bench_wallclock.py``).

Two configurations are measured with the ``bench_wallclock`` protocol
(one engine per mode, 1 cold + N warm runs, best-of-warm headline):

* ``dormant`` — ``faults=None``: the hooks exist in the code but no
  injector is ever built.  **Gated**: best-of-warm must stay within
  ``--tolerance`` (default 3%) of the baseline's batched best.
* ``inert-plan`` — an *active* plan whose only entry is a device loss
  scheduled far beyond the end of the run: an injector is attached,
  the generic fetch path is forced and every per-round loss check
  runs, but no fault ever fires.  Reported for information (this is
  the price of arming the injector, not of carrying the hooks) and
  checked for bit-identical output against ``dormant``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_fault_overhead.py --quick  # smoke
"""

import argparse
import datetime
import json
import os
import platform
import sys
import time

import numpy as np

from repro.core import GTSEngine
from repro.core.kernels.pagerank import PageRankKernel
from repro.faults import FaultPlan
from repro.format import PageFormatConfig, build_database
from repro.graphgen import generate_rmat
from repro.hardware.specs import scaled_workstation

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(ROOT, "BENCH_faults.json")
DEFAULT_BASELINE = os.path.join(ROOT, "BENCH_wallclock.json")
DEFAULT_HISTORY = os.path.join(ROOT, "BENCH_history.jsonl")

#: Active plan that never fires: one GPU loss a simulated week away.
INERT_PLAN = FaultPlan(gpu_loss={0: 7 * 24 * 3600.0})


def run_mode(db, machine, iterations, repeats, faults):
    """One engine, ``1 + repeats`` batched runs; mirrors bench_wallclock."""
    from bench_wallclock import summarize_samples

    engine = GTSEngine(db, machine, execution="batched", faults=faults)
    wall = []
    result = None
    for _ in range(1 + repeats):
        kernel = PageRankKernel(iterations=iterations)
        start = time.perf_counter()
        result = engine.run(kernel)
        wall.append(time.perf_counter() - start)
    return summarize_samples(wall), result


def load_baseline(path):
    """The PR 3 batched best-of-warm, or None when unavailable."""
    try:
        with open(path) as handle:
            report = json.load(handle)
        return report["kernels"]["pagerank"]["batched"]["best_seconds"]
    except (OSError, KeyError, ValueError):
        return None


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="zero-fault overhead gate for the injection hooks")
    parser.add_argument("--scale", type=int, default=18)
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--tolerance", type=float, default=0.03,
                        help="allowed fractional regression of the dormant "
                             "config vs the baseline (default 0.03)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="bench_wallclock report to gate against")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        metavar="JSONL",
                        help="append a schema-versioned record to this "
                             "benchmark-history log (see repro.obs."
                             "history); '' disables the append")
    parser.add_argument("--quick", action="store_true",
                        help="smoke: scale 13, 2 repeats, 5 iterations, "
                             "self-measured baseline only")
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = min(args.scale, 13)
        args.repeats = min(args.repeats, 2)
        args.iterations = min(args.iterations, 5)

    config = PageFormatConfig(page_id_bytes=4, slot_bytes=2, page_size=2048)
    print("building RMAT%d (edge_factor=%d, seed=%d)..."
          % (args.scale, args.edge_factor, args.seed))
    graph = generate_rmat(args.scale, edge_factor=args.edge_factor,
                          seed=args.seed)
    db = build_database(graph, config)
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    print("  %d vertices, %d edges, %d pages"
          % (db.num_vertices, graph.num_edges, db.num_pages))

    print("== dormant (faults=None) ==")
    dormant_times, dormant_result = run_mode(
        db, machine, args.iterations, args.repeats, None)
    print("  cold %.2fs  warm %s" % (dormant_times["cold_seconds"],
                                     dormant_times["warm_seconds"]))
    print("== inert plan (armed injector, no faults fire) ==")
    inert_times, inert_result = run_mode(
        db, machine, args.iterations, args.repeats, INERT_PLAN)
    print("  cold %.2fs  warm %s" % (inert_times["cold_seconds"],
                                     inert_times["warm_seconds"]))

    identical = (
        dormant_result.elapsed_seconds == inert_result.elapsed_seconds
        and all(np.array_equal(dormant_result.values[k],
                               inert_result.values[k])
                for k in dormant_result.values))
    assert inert_result.fault_stats is not None
    no_faults_fired = inert_result.fault_stats["faults_injected"] == 0

    # The quick smoke runs a different scale than the checked-in
    # baseline, so it can only gate against itself.
    baseline_best = None if args.quick else load_baseline(args.baseline)
    gated_against = ("baseline" if baseline_best is not None
                     else "self (no comparable baseline)")
    reference = (baseline_best if baseline_best is not None
                 else dormant_times["best_seconds"])
    overhead = dormant_times["best_seconds"] / reference - 1.0
    inert_overhead = (inert_times["best_seconds"]
                      / dormant_times["best_seconds"] - 1.0)
    print("dormant overhead vs %s: %+.1f%% (gate +%.0f%%); "
          "inert-plan overhead vs dormant: %+.1f%% (informational)"
          % (gated_against, overhead * 100, args.tolerance * 100,
             inert_overhead * 100))

    gate_passed = (overhead <= args.tolerance and identical
                   and no_faults_fired)
    report = {
        "benchmark": "fault_injection_zero_fault_overhead",
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "dataset": {
            "generator": "rmat", "scale": args.scale,
            "edge_factor": args.edge_factor, "seed": args.seed,
            "num_pages": int(db.num_pages),
        },
        "machine": "scaled_workstation(num_gpus=2, num_ssds=2)",
        "protocol": {
            "kernel": "pagerank", "iterations": args.iterations,
            "execution": "batched", "repeats": args.repeats,
            "timing": "1 cold + N warm runs per mode on one engine; "
                      "overhead compares best-of-warm",
        },
        "quick": args.quick,
        "dormant": dormant_times,
        "inert_plan": inert_times,
        "baseline_best_seconds": baseline_best,
        "gated_against": gated_against,
        "dormant_overhead": round(overhead, 4),
        "inert_plan_overhead": round(inert_overhead, 4),
        "tolerance": args.tolerance,
        "bit_identical": bool(identical),
        "inert_plan_faults_injected":
            inert_result.fault_stats["faults_injected"],
        "gate_passed": bool(gate_passed),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print("wrote %s" % args.out)
    if args.history:
        from repro.obs.history import append_history
        append_history(
            args.history, report["benchmark"], report,
            meta={"quick": args.quick, "scale": args.scale,
                  "edge_factor": args.edge_factor, "seed": args.seed,
                  "iterations": args.iterations,
                  "repeats": args.repeats},
            generated=report["generated"])
        print("appended history record to %s" % args.history)
    if not identical:
        print("FAIL: inert-plan run is not bit-identical to dormant",
              file=sys.stderr)
        return 1
    if not no_faults_fired:
        print("FAIL: the inert plan injected faults", file=sys.stderr)
        return 1
    if overhead > args.tolerance:
        print("FAIL: dormant hooks cost %+.1f%% (> %.0f%% gate)"
              % (overhead * 100, args.tolerance * 100), file=sys.stderr)
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
