"""Figure 4: actual timelines of copy operations (BFS vs PageRank)."""

from repro.bench.experiments import figure4_timelines


def test_figure4_timelines(report):
    report(figure4_timelines, "fig4_timelines")
