"""Ablation A1: the GPU page cache on vs off, plus the naive-model check."""

from repro.bench.experiments import (
    ablation_cache_policies,
    ablation_caching,
    naive_hit_rate_check,
)


def test_ablation_caching(report):
    report(ablation_caching, "ablation_cache")


def test_ablation_cache_policies(report):
    report(ablation_cache_policies, "ablation_cache_policies")


def test_naive_hit_rate_check(report):
    report(naive_hit_rate_check, "ablation_cache_model")
