"""Extension: the remaining Section 3.3 algorithms through GTS."""

from repro.bench.experiments import extended_algorithms


def test_extended_algorithms(report):
    report(extended_algorithms, "extended_algorithms")
