"""Table 4: WA attribute-vector sizes versus topology size."""

from repro.bench.experiments import table4_wa_sizes


def test_table4_wa_sizes(report):
    report(table4_wa_sizes, "table4_wa_sizes")
