"""Figure 8: GTS vs MapGraph / CuSha / TOTEM (BFS, PageRank)."""

from repro.bench.experiments import figure8_gpu


def test_figure8_bfs(report):
    report(figure8_gpu, "fig8_gpu_bfs", "BFS")


def test_figure8_pagerank(report):
    report(figure8_gpu, "fig8_gpu_pagerank", "PageRank")
