"""Figure 6: GTS vs GraphX / Giraph / PowerGraph / Naiad (BFS, PageRank)."""

from repro.bench.experiments import figure6_distributed


def test_figure6_bfs(report):
    report(figure6_distributed, "fig6_distributed_bfs", "BFS")


def test_figure6_pagerank(report):
    report(figure6_distributed, "fig6_distributed_pagerank", "PageRank")
