"""Dynamic updates: incremental recomputation vs full rebuild + rerun.

For insert batches touching a small fraction of the graph, continuing
the previous answer from the dirtied pages must beat rebuilding the
database and restreaming every page.  The table sweeps batch sizes from
"a handful of edges" to "a sizable fraction of the graph" and reports
pages streamed plus simulated seconds for both strategies; an in-test
assertion locks the headline claim (strictly fewer pages whenever the
batch touches <10% of the vertices).
"""

import numpy as np

from repro.bench.harness import ExperimentTable, format_seconds
from repro.core import BFSKernel, GTSEngine
from repro.dynamic import (
    DynamicGraphDatabase,
    UpdateBatch,
    WriteAheadLog,
    compact,
    incremental_bfs,
    materialise_graph,
)
from repro.format import PageFormatConfig, build_database
from repro.graphgen import generate_rmat
from repro.hardware.specs import scaled_workstation
from repro.units import KB

SCALE = 13          # 8K vertices -- big enough for many pages
EDGE_FACTOR = 16
BATCH_SIZES = (8, 32, 128, 512)


def _random_batch(rng, num_vertices, num_edges):
    batch = UpdateBatch()
    for _ in range(num_edges):
        batch.insert_edge(int(rng.integers(num_vertices)),
                          int(rng.integers(num_vertices)))
    return batch


def dynamic_update_comparison():
    config = PageFormatConfig(2, 2, 2 * KB)
    machine = scaled_workstation(num_gpus=1, num_ssds=2)
    graph = generate_rmat(SCALE, edge_factor=EDGE_FACTOR, seed=99)
    base = build_database(graph, config)
    start = int(np.argmax(graph.out_degrees()))

    table = ExperimentTable(
        "Incremental BFS after insert batches (RMAT%d, %d pages)"
        % (SCALE, base.num_pages),
        ["touched", "full pages", "incr pages", "full time", "incr time",
         "speedup"],
        caption="full = rebuild database + rerun from scratch; "
                "incr = WAL apply + restream dirtied pages only")

    rng = np.random.default_rng(2024)
    for batch_size in BATCH_SIZES:
        db = DynamicGraphDatabase(base)
        engine = GTSEngine(db, machine)
        prior = engine.run(BFSKernel(start_vertex=start))

        batch = _random_batch(rng, db.num_vertices, batch_size)
        db.apply(batch)
        touched = len(batch.touched_vertices())
        fraction = touched / db.num_vertices

        # Full strategy: fold everything into a fresh base, rerun.
        rebuilt = build_database(materialise_graph(db), config)
        full = GTSEngine(rebuilt, machine).run(BFSKernel(start_vertex=start))

        incr = engine.run(
            incremental_bfs(db, prior.values["level"], [batch]))
        np.testing.assert_array_equal(
            incr.values["level"], full.values["level"])

        if fraction < 0.10:
            assert incr.pages_streamed < full.pages_streamed, (
                "batch touching %.1f%% of vertices streamed %d pages "
                "vs %d for the full rerun"
                % (100 * fraction, incr.pages_streamed,
                   full.pages_streamed))

        speedup = (full.elapsed_seconds / incr.elapsed_seconds
                   if incr.elapsed_seconds > 0 else float("inf"))
        table.add_row(
            "%d edges" % batch_size,
            ["%d (%.1f%%)" % (touched, 100 * fraction),
             str(full.pages_streamed),
             str(incr.pages_streamed),
             format_seconds(full.elapsed_seconds),
             format_seconds(incr.elapsed_seconds),
             "%.1fx" % speedup])

    return table


def wal_compaction_lifecycle():
    """WAL growth and compaction across a stream of batches."""
    import os
    import tempfile

    from repro.obs import collect_dynamic_metrics

    config = PageFormatConfig(2, 2, 2 * KB)
    graph = generate_rmat(SCALE - 2, edge_factor=8, seed=17)
    base = build_database(graph, config)
    tmp = tempfile.mkdtemp(prefix="gts-bench-wal-")
    wal = WriteAheadLog(os.path.join(tmp, "bench.wal"), fsync=False)
    db = DynamicGraphDatabase(base, wal=wal)

    table = ExperimentTable(
        "WAL and delta growth over a mutation stream (RMAT%d)" % (SCALE - 2),
        ["delta bytes", "delta pages", "wal bytes"],
        caption="compaction folds the deltas back into a clean base; "
                "the log is kept until the base is durably saved")

    rng = np.random.default_rng(5)
    for checkpoint in (4, 16, 64):
        while db.applied_batches < checkpoint:
            db.apply(_random_batch(rng, db.num_vertices, 8))
        stats = db.dynamic_stats()
        table.add_row("%d" % checkpoint,
                      [str(stats["delta_bytes"]),
                       str(stats["delta_pages"]),
                       str(stats["wal_bytes_appended"])])

    compact(db)
    stats = db.dynamic_stats()
    assert stats["delta_bytes"] == 0
    assert stats["compactions"] == 1
    metrics = collect_dynamic_metrics(db).as_dict()["metrics"]
    assert metrics["compaction.count"]["value"] == 1
    table.add_row("compacted",
                  [str(stats["delta_bytes"]), str(stats["delta_pages"]),
                   "(kept)"])
    return table


def test_incremental_vs_full(report):
    report(dynamic_update_comparison, "dynamic_incremental_vs_full")


def test_wal_compaction_lifecycle(report):
    report(wal_compaction_lifecycle, "dynamic_wal_compaction")
