"""Figure 9: Strategy-P vs Strategy-S across storage types (RMAT30)."""

from repro.bench.experiments import figure9_strategies


def test_figure9_bfs(report):
    report(figure9_strategies, "fig9_strategies_bfs", "BFS")


def test_figure9_pagerank(report):
    report(figure9_strategies, "fig9_strategies_pagerank", "PageRank")
