"""Table 2: the three 6-byte physical-ID configurations."""

from repro.bench.experiments import table2_id_configurations


def test_table2_id_configurations(report):
    report(table2_id_configurations, "table2_idconfig")
