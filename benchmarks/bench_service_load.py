"""Service load benchmark: the workload x concurrency x scale matrix.

Drives a :class:`repro.service.GraphService` the way a tenant mix
would — many concurrent queries over one shared database handle — and
measures what the service layer is for: cross-query shared-page-cache
hit rate, admission behaviour at saturation, and host wall-clock
latency quantiles (p50/p95/p99) per cell of the matrix.

Protocol
--------
Each cell gets a *fresh* service (so its cache starts cold and the hit
rate is the cell's own), a file-backed handle with a deliberately tiny
page pool (``--pool-pages``), and ``--queries`` paged-execution queries
drawn round-robin from the cell's workload with seeded start vertices.
Paged execution is the point: it reads pages per round, which is the
path the shared cache serves (the batched path runs off the cached
round plan and touches no pages when warm).

The baseline cells re-run the top-concurrency cell with the shared
cache in accounting-only mode (``shared_cache_pages=0``): every probe
misses and every page is re-parsed per query — the per-run-rebuild
behaviour the service replaces.  The headline gate requires the shared
hit rate to be *strictly above* that baseline's.

Three further checks ride along: every query of the top-concurrency
mixed cell must be bit-identical (simulated time and values) to the
same query run serially at concurrency 1; an over-subscribed miniature
service must reject the overflow with typed ``AdmissionError`` while
completing everything it admitted; and in full mode the top cell must
sustain at least 64 concurrent queries.

A fifth gate prices the request telemetry
(:mod:`repro.obs.telemetry`): the same mixed cell runs bare and
instrumented, interleaved ``--telemetry-repeats`` times, and the
best-of-N instrumented p95 must stay within 1.05x of the bare one (a
2 ms absolute floor absorbs clock granularity at quick scale), with
every instrumented result bit-identical to its bare twin.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_load.py          # full
    PYTHONPATH=src python benchmarks/bench_service_load.py --quick  # CI
"""

import argparse
import datetime
import json
import os
import platform
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.errors import AdmissionError
from repro.format import PageFormatConfig, build_database
from repro.format.io import save_database
from repro.graphgen import generate_rmat
from repro.service import GraphService
from repro.units import KB

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(ROOT, "BENCH_service.json")
DEFAULT_HISTORY = os.path.join(ROOT, "BENCH_history.jsonl")

#: Workload name -> algorithm rotation its queries are drawn from.
WORKLOADS = {
    "scan": ["pagerank", "cc"],
    "traversal": ["bfs", "sssp"],
    "mixed": ["bfs", "pagerank", "sssp", "cc"],
}


def build_dataset(tmp, scale, edge_factor, seed):
    """Build, weight and save one RMAT database; returns its prefix."""
    graph = generate_rmat(scale, edge_factor=edge_factor, seed=seed)
    graph = graph.with_random_weights(seed=seed)
    db = build_database(graph,
                        PageFormatConfig(2, 2, 1 * KB, weight_bytes=4),
                        name="rmat%d" % scale)
    prefix = os.path.join(tmp, "rmat%d" % scale)
    save_database(db, prefix)
    return prefix, {
        "scale": scale, "edge_factor": edge_factor, "seed": seed,
        "num_vertices": int(db.num_vertices),
        "num_edges": int(graph.num_edges),
        "num_pages": int(db.num_pages),
    }


def make_queries(workload, num_queries, num_vertices, seed):
    """The cell's query list: seeded starts, round-robin algorithms."""
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, num_vertices, size=num_queries)
    rotation = WORKLOADS[workload]
    return [
        {"algorithm": rotation[i % len(rotation)],
         "params": {"start": int(starts[i]), "iterations": 3},
         "options": {"execution": "paged"}}
        for i in range(num_queries)
    ]


def run_cell(prefix, queries, concurrency, pool_pages,
             shared_cache_pages=None, telemetry=None):
    """One matrix cell: fresh service, all queries, stats snapshot."""
    service = GraphService(max_in_flight=concurrency,
                           max_queue=len(queries),
                           shared_cache_pages=shared_cache_pages,
                           telemetry=telemetry)
    service.add_database("g", prefix=prefix, pool_pages=pool_pages)
    wall_start = time.perf_counter()
    futures = [service.submit(dict(q, database="g")) for q in queries]
    results = [f.result() for f in futures]
    wall = time.perf_counter() - wall_start
    stats = service.stats()
    service.drain(wait=True)
    db = stats["databases"]["g"]
    latency = stats["latency_seconds"]
    cell = {
        "queries": len(results),
        "concurrency": concurrency,
        "wall_seconds": round(wall, 4),
        "throughput_qps": round(len(results) / wall, 2),
        "p50_seconds": round(latency["p50"], 4),
        "p95_seconds": round(latency["p95"], 4),
        "p99_seconds": round(latency["p99"], 4),
        "peak_in_flight": stats["peak_in_flight"],
        "completed": stats["completed"],
        "failed": stats["failed"],
        "shared_hits": db["shared_cache"]["hits"],
        "shared_misses": db["shared_cache"]["misses"],
        "shared_hit_rate": round(db["shared_cache"]["hit_rate"], 4),
        "pool_hits": db.get("pool_hits", 0),
        "pool_misses": db.get("pool_misses", 0),
        # Simulated seconds are deterministic whatever the interleaving,
        # so their sum over a fixed query list is a regression canary.
        "simulated_total_seconds": float(
            sum(r.elapsed_seconds for r in results)),
    }
    return cell, results


def check_equivalence(serial, concurrent):
    """Every concurrent result must match its serial twin bit-for-bit."""
    problems = []
    for i, (a, b) in enumerate(zip(serial, concurrent)):
        if a.elapsed_seconds != b.elapsed_seconds:
            problems.append("query %d: elapsed %r != %r"
                            % (i, a.elapsed_seconds, b.elapsed_seconds))
        for key in a.values:
            if not np.array_equal(a.values[key], b.values[key]):
                problems.append("query %d: values[%r] differ" % (i, key))
    for problem in problems:
        print("EQUIVALENCE FAILURE: %s" % problem, file=sys.stderr)
    return not problems


def telemetry_overhead(prefix, queries, concurrency, pool_pages,
                       repeats=3):
    """Price the request telemetry: bare vs instrumented, interleaved.

    Runs the pair ``repeats`` times back to back (interleaving sheds
    slow drift — thermal, page cache — evenly across both arms) and
    compares best-of-N p95s, the stablest host-latency statistic this
    side of a dedicated runner.  The instrumented arm uses a
    production-shaped config: head-sampling every 8th request, the
    default 250 ms slow threshold, no ring directory (ring appends
    only fire on slow/error requests anyway).
    """
    from repro.obs.telemetry import TelemetryConfig
    config = {"slow_ms": 250.0, "sample_every": 8}
    off_p95s, on_p95s = [], []
    off_results = on_results = None
    for _ in range(repeats):
        cell_off, off_results = run_cell(prefix, queries, concurrency,
                                         pool_pages)
        cell_on, on_results = run_cell(
            prefix, queries, concurrency, pool_pages,
            telemetry=TelemetryConfig(**config))
        off_p95s.append(cell_off["p95_seconds"])
        on_p95s.append(cell_on["p95_seconds"])
    best_off, best_on = min(off_p95s), min(on_p95s)
    return {
        "concurrency": concurrency,
        "queries": len(queries),
        "repeats": repeats,
        "config": config,
        "off_p95_seconds": best_off,
        "on_p95_seconds": best_on,
        "overhead_p95": round(best_on / best_off, 4) if best_off > 0
        else 1.0,
        "bit_identical": check_equivalence(off_results, on_results),
    }


def saturation_probe(prefix, pool_pages):
    """Over-subscribe a tiny service; overflow must reject typed."""
    service = GraphService(max_in_flight=2, max_queue=2)
    service.add_database("g", prefix=prefix, pool_pages=pool_pages)
    submitted, rejected, futures = 16, 0, []
    for i in range(submitted):
        try:
            futures.append(service.submit({
                "database": "g", "algorithm": "bfs",
                "params": {"start": 0},
                "options": {"execution": "paged"}}))
        except AdmissionError:
            rejected += 1
    completed = sum(1 for f in futures if f.result() is not None)
    service.drain(wait=True)
    return {"submitted": submitted, "admitted": len(futures),
            "rejected": rejected, "completed": completed}


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="load matrix for the multi-tenant graph service")
    parser.add_argument("--scales", default="9,11",
                        help="comma list of RMAT scales (default 9,11); "
                             "the first is the matrix's base scale")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--concurrency", default="1,4,16,64",
                        help="comma list of in-flight widths "
                             "(default 1,4,16,64)")
    parser.add_argument("--queries", type=int, default=64,
                        help="queries per matrix cell (default 64)")
    parser.add_argument("--pool-pages", type=int, default=8,
                        help="file pool size; kept far below the page "
                             "count so reads spill to the shared cache")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        metavar="JSONL",
                        help="append a schema-versioned record to this "
                             "benchmark-history log (see repro.obs."
                             "history); '' disables the append")
    parser.add_argument("--telemetry-repeats", type=int, default=3,
                        help="interleaved bare/instrumented pairs for "
                             "the telemetry overhead gate (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: scale 9 only, concurrency 1,8, "
                             "12 queries per cell")
    args = parser.parse_args(argv)
    if args.quick:
        args.scales = args.scales.split(",")[0]
        args.concurrency = "1,8"
        args.queries = min(args.queries, 12)

    scales = [int(s) for s in args.scales.split(",") if s.strip()]
    levels = [int(c) for c in args.concurrency.split(",") if c.strip()]
    base_scale, top = scales[0], max(levels)

    tmp = tempfile.mkdtemp(prefix="bench_service_")
    report = {
        "benchmark": "service_load",
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "protocol": {
            "queries_per_cell": args.queries,
            "pool_pages": args.pool_pages,
            "execution": "paged",
            "baseline": "same cell, shared cache in accounting-only "
                        "mode (every probe misses, pages re-parsed "
                        "per query)",
        },
        "quick": args.quick,
        "datasets": {},
        "matrix": {},
        "baseline": {},
        "scales": {},
    }

    try:
        prefixes = {}
        for scale in scales:
            print("building RMAT%d (edge_factor=%d, seed=%d)..."
                  % (scale, args.edge_factor, args.seed))
            prefix, info = build_dataset(tmp, scale, args.edge_factor,
                                         args.seed)
            prefixes[scale] = (prefix, info)
            report["datasets"]["rmat%d" % scale] = info

        ok = True
        base_prefix, base_info = prefixes[base_scale]

        # Workload x concurrency at the base scale.
        serial_mixed = concurrent_mixed = None
        for workload in sorted(WORKLOADS):
            queries = make_queries(workload, args.queries,
                                   base_info["num_vertices"], args.seed)
            for concurrency in levels:
                cell, results = run_cell(base_prefix, queries,
                                         concurrency, args.pool_pages)
                name = "%s.c%d" % (workload, concurrency)
                report["matrix"][name] = cell
                print("  %-16s %5.1f q/s  p95 %.3fs  shared hit %.1f%%"
                      % (name, cell["throughput_qps"],
                         cell["p95_seconds"],
                         100 * cell["shared_hit_rate"]))
                if workload == "mixed" and concurrency == min(levels):
                    serial_mixed = results
                if workload == "mixed" and concurrency == top:
                    concurrent_mixed = results
            baseline_cell, _ = run_cell(base_prefix, queries, top,
                                        args.pool_pages,
                                        shared_cache_pages=0)
            report["baseline"][workload] = baseline_cell

        # Scale sweep: the mixed workload at the top width.
        for scale in scales:
            prefix, info = prefixes[scale]
            queries = make_queries("mixed", args.queries,
                                   info["num_vertices"], args.seed)
            cell, _ = run_cell(prefix, queries, top, args.pool_pages)
            report["scales"]["rmat%d.c%d" % (scale, top)] = cell

        # Gate 1: concurrency must not change a single bit.
        equivalent = check_equivalence(serial_mixed, concurrent_mixed)
        report["bit_identical"] = equivalent
        ok = ok and equivalent

        # Gate 2: warm sharing must beat the per-run-rebuild baseline.
        headline = report["matrix"]["mixed.c%d" % top]["shared_hit_rate"]
        baseline = report["baseline"]["mixed"]["shared_hit_rate"]
        report["headline_hit_rate"] = headline
        report["baseline_hit_rate"] = baseline
        if headline <= baseline:
            print("FAIL: shared hit rate %.3f not above baseline %.3f"
                  % (headline, baseline), file=sys.stderr)
            ok = False

        # Gate 3: saturation rejects typed, completes what it admitted.
        probe = saturation_probe(base_prefix, args.pool_pages)
        report["saturation_probe"] = probe
        if not probe["rejected"] or (probe["completed"]
                                     != probe["admitted"]):
            print("FAIL: saturation probe %r" % probe, file=sys.stderr)
            ok = False

        # Gate 5: telemetry is pay-for-use.  Best-of-N instrumented
        # p95 within 1.05x of bare (a 2 ms absolute floor absorbs
        # clock granularity on quick-scale cells), results identical.
        tel_queries = make_queries("mixed", args.queries,
                                   base_info["num_vertices"], args.seed)
        tel = telemetry_overhead(base_prefix, tel_queries, min(top, 8),
                                 args.pool_pages,
                                 repeats=args.telemetry_repeats)
        report["telemetry"] = tel
        print("  telemetry overhead: p95 %.4fs bare -> %.4fs "
              "instrumented (%.2fx)"
              % (tel["off_p95_seconds"], tel["on_p95_seconds"],
                 tel["overhead_p95"]))
        within_budget = (
            tel["overhead_p95"] <= 1.05
            or tel["on_p95_seconds"] - tel["off_p95_seconds"] <= 0.002)
        if not within_budget:
            print("FAIL: telemetry p95 overhead %.3fx above 1.05x "
                  "budget" % tel["overhead_p95"], file=sys.stderr)
            ok = False
        if not tel["bit_identical"]:
            print("FAIL: telemetry changed query results",
                  file=sys.stderr)
            ok = False

        mixed_cells = [(c, report["matrix"]["mixed.c%d" % c])
                       for c in levels]
        report["saturation_concurrency"] = max(
            mixed_cells, key=lambda pair: pair[1]["throughput_qps"])[0]

        # Gate 4 (full runs): the acceptance floor of 64 concurrent
        # queries actually admitted together.
        if not args.quick:
            cell = report["matrix"]["mixed.c%d" % top]
            if top < 64 or cell["completed"] < 64 or cell["failed"]:
                print("FAIL: top cell did not sustain 64 concurrent "
                      "queries: %r" % cell, file=sys.stderr)
                ok = False

        report["gate_passed"] = bool(ok)
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print("wrote %s" % args.out)
        if args.history:
            from repro.obs.history import append_history
            append_history(
                args.history, report["benchmark"], report,
                meta={"quick": args.quick, "scales": args.scales,
                      "concurrency": args.concurrency,
                      "queries": args.queries, "seed": args.seed,
                      "pool_pages": args.pool_pages},
                generated=report["generated"])
            print("appended history record to %s" % args.history)
        if not ok:
            print("FAIL: service load gate", file=sys.stderr)
            return 1
        print("gate passed: hit rate %.3f > baseline %.3f, "
              "saturation at c=%d"
              % (headline, baseline, report["saturation_concurrency"]))
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
