"""Wall-clock benchmark gate: batched vs paged round execution.

Unlike the ``bench_fig*`` harnesses, which report *simulated* seconds,
this script measures real host wall-clock for the two execution paths of
:class:`repro.core.engine.GTSEngine` and fails if the vectorized path
does not deliver.  It is both the acceptance artifact for the fast path
(``BENCH_wallclock.json`` at the repo root, produced by a full run) and
a CI smoke gate (``--quick``).

Protocol
--------
The database is built once and shared.  Each execution mode gets one
engine and ``1 + repeats`` runs: the first is reported as *cold* (for
the batched path it pays the one-time :class:`PagePlan` build; for the
paged path it pays the database scatter-index cache fill), the rest as
*warm*, and the headline speedup compares best-of-warm to best-of-warm.
Cold numbers are reported separately rather than mixed in, because the
plan build amortises across every later run on the same topology.

Every pair of runs is also checked for bit-identical simulated time and
algorithm output — a speedup that changes answers is a bug, not a win.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py           # full
    PYTHONPATH=src python benchmarks/bench_wallclock.py --quick   # CI
"""

import argparse
import datetime
import json
import os
import platform
import sys
import time

import numpy as np

from repro.core import GTSEngine
from repro.core.kernels.bfs import BFSKernel
from repro.core.kernels.pagerank import PageRankKernel
from repro.core.kernels.sssp import SSSPKernel
from repro.core.kernels.wcc import WCCKernel
from repro.format import PageFormatConfig, build_database
from repro.graphgen import generate_rmat
from repro.hardware.specs import scaled_workstation

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(ROOT, "BENCH_wallclock.json")
DEFAULT_HISTORY = os.path.join(ROOT, "BENCH_history.jsonl")


def make_kernel(name, iterations):
    if name == "pagerank":
        return PageRankKernel(iterations=iterations)
    if name == "bfs":
        return BFSKernel(start_vertex=0)
    if name == "sssp":
        return SSSPKernel(start_vertex=0)
    if name == "wcc":
        return WCCKernel()
    raise SystemExit("unknown kernel %r" % name)


def summarize_samples(wall):
    """Cold/warm split plus distribution statistics over the warm
    repeats (best-of-warm stays the headline; p50/p95 expose run-to-run
    spread instead of hiding it behind the single best sample)."""
    warm = wall[1:] or wall
    ordered = sorted(warm)
    from repro.obs.metrics import Histogram
    return {
        "cold_seconds": round(wall[0], 4),
        "warm_seconds": [round(w, 4) for w in wall[1:]],
        "best_seconds": round(min(warm), 4),
        "mean_seconds": round(sum(warm) / len(warm), 4),
        "p50_seconds": round(Histogram._quantile(ordered, 0.50), 4),
        "p95_seconds": round(Histogram._quantile(ordered, 0.95), 4),
    }


def run_mode(db, machine, kernel_name, iterations, execution, repeats):
    """One engine, ``1 + repeats`` runs; returns (timings, last result)."""
    engine = GTSEngine(db, machine, execution=execution)
    wall = []
    result = None
    for _ in range(1 + repeats):
        kernel = make_kernel(kernel_name, iterations)
        start = time.perf_counter()
        result = engine.run(kernel)
        wall.append(time.perf_counter() - start)
    return summarize_samples(wall), result


def check_equivalent(kernel_name, paged, batched):
    """Both paths must agree bit-for-bit on time and answers."""
    problems = []
    if paged.elapsed_seconds != batched.elapsed_seconds:
        problems.append("elapsed_seconds %r != %r" % (
            paged.elapsed_seconds, batched.elapsed_seconds))
    for key in paged.values:
        if not np.array_equal(paged.values[key], batched.values[key]):
            problems.append("values[%r] differ" % key)
    if paged.num_rounds != batched.num_rounds:
        problems.append("num_rounds %d != %d" % (
            paged.num_rounds, batched.num_rounds))
    for problem in problems:
        print("EQUIVALENCE FAILURE (%s): %s" % (kernel_name, problem),
              file=sys.stderr)
    return not problems


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="wall-clock gate for batched vs paged execution")
    parser.add_argument("--scale", type=int, default=18,
                        help="RMAT scale (default 18)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--iterations", type=int, default=10,
                        help="PageRank iterations (default 10)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="warm runs per mode (default 3)")
    parser.add_argument("--kernels", default="pagerank",
                        help="comma list: pagerank,bfs,sssp,wcc")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail if the headline kernel's best-of-warm "
                             "speedup is below this (default 1.0: batched "
                             "must not be slower)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        metavar="JSONL",
                        help="append a schema-versioned record to this "
                             "benchmark-history log (see repro.obs."
                             "history); '' disables the append")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: scale 13, 2 repeats, 5 iterations")
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = min(args.scale, 13)
        args.repeats = min(args.repeats, 2)
        args.iterations = min(args.iterations, 5)

    config = PageFormatConfig(page_id_bytes=4, slot_bytes=2, page_size=2048)
    print("building RMAT%d (edge_factor=%d, seed=%d)..."
          % (args.scale, args.edge_factor, args.seed))
    graph = generate_rmat(args.scale, edge_factor=args.edge_factor,
                          seed=args.seed)
    db = build_database(graph, config)
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    print("  %d vertices, %d edges, %d pages"
          % (db.num_vertices, graph.num_edges, db.num_pages))

    kernels = [k.strip() for k in args.kernels.split(",") if k.strip()]
    report = {
        "benchmark": "wallclock_batched_vs_paged",
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "dataset": {
            "generator": "rmat", "scale": args.scale,
            "edge_factor": args.edge_factor, "seed": args.seed,
            "num_vertices": int(db.num_vertices),
            "num_edges": int(graph.num_edges),
            "num_pages": int(db.num_pages),
        },
        "machine": "scaled_workstation(num_gpus=2, num_ssds=2)",
        "protocol": {
            "repeats": args.repeats,
            "timing": "1 cold + N warm runs per mode on one engine; "
                      "headline speedup is best-of-warm / best-of-warm",
        },
        "quick": args.quick,
        "kernels": {},
    }

    ok = True
    headline_speedup = None
    for kernel_name in kernels:
        print("== %s ==" % kernel_name)
        paged_times, paged_result = run_mode(
            db, machine, kernel_name, args.iterations, "paged", args.repeats)
        print("  paged   cold %.2fs  warm %s" % (
            paged_times["cold_seconds"], paged_times["warm_seconds"]))
        batched_times, batched_result = run_mode(
            db, machine, kernel_name, args.iterations, "batched",
            args.repeats)
        print("  batched cold %.2fs  warm %s" % (
            batched_times["cold_seconds"], batched_times["warm_seconds"]))
        equivalent = check_equivalent(
            kernel_name, paged_result, batched_result)
        ok = ok and equivalent
        speedup = round(
            paged_times["best_seconds"] / batched_times["best_seconds"], 2)
        cold_speedup = round(
            paged_times["cold_seconds"] / batched_times["cold_seconds"], 2)
        if headline_speedup is None:
            headline_speedup = speedup
        print("  speedup %.2fx warm best-of-%d (%.2fx cold)"
              % (speedup, args.repeats, cold_speedup))
        report["kernels"][kernel_name] = {
            "iterations": (args.iterations
                           if kernel_name == "pagerank" else None),
            "paged": paged_times,
            "batched": batched_times,
            "speedup_best": speedup,
            "speedup_cold": cold_speedup,
            "simulated_elapsed_seconds": paged_result.elapsed_seconds,
            "bit_identical": equivalent,
        }

    report["headline_speedup"] = headline_speedup
    report["min_speedup_gate"] = args.min_speedup
    gate_ok = headline_speedup is not None and (
        headline_speedup >= args.min_speedup)
    report["gate_passed"] = bool(ok and gate_ok)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print("wrote %s" % args.out)
    if args.history:
        from repro.obs.history import append_history
        append_history(
            args.history, report["benchmark"], report,
            meta={"quick": args.quick, "scale": args.scale,
                  "edge_factor": args.edge_factor, "seed": args.seed,
                  "iterations": args.iterations,
                  "repeats": args.repeats, "kernels": args.kernels},
            generated=report["generated"])
        print("appended history record to %s" % args.history)
    if not ok:
        print("FAIL: execution paths disagree", file=sys.stderr)
        return 1
    if not gate_ok:
        print("FAIL: headline speedup %sx below gate %.2fx"
              % (headline_speedup, args.min_speedup), file=sys.stderr)
        return 1
    print("gate passed: %.2fx >= %.2fx" % (headline_speedup,
                                           args.min_speedup))
    return 0


if __name__ == "__main__":
    sys.exit(main())
