"""Wall-clock benchmark gate: batched vs paged round execution, the
zero-copy mmap store, and the multiprocess host backend.

Unlike the ``bench_fig*`` harnesses, which report *simulated* seconds,
this script measures real host wall-clock for the host-side options of
:class:`repro.core.engine.GTSEngine` and fails if they do not deliver.
It is both the acceptance artifact (``BENCH_wallclock.json`` at the
repo root, produced by a full run) and a CI smoke gate (``--quick``).

Protocol
--------
The database is built once and shared.  Each execution mode gets one
engine and ``1 + repeats`` runs: the first is reported as *cold* (for
the batched path it pays the one-time :class:`PagePlan` build; for the
paged path it pays the database scatter-index cache fill), the rest as
*warm*, and the headline speedup compares best-of-warm to best-of-warm.
Cold numbers are reported separately rather than mixed in, because the
plan build amortises across every later run on the same topology.

Two further cells measure the PR-8 host optimisations on a saved copy
of the dataset (8 KiB pages — wide enough that vectorized decode, not
per-page Python overhead, dominates):

* ``store_modes`` — a full eager :func:`load_database` versus a
  ``mode="mmap"`` open plus a complete page scan (what a cold query
  actually pays before its first round).  Gated by
  ``--min-mmap-speedup``.
* ``backends`` — serial versus ``backend="process"`` batched PageRank
  over the mapped store.  Gated by ``--min-process-speedup``, enforced
  only on multi-core hosts (a single-core runner records the numbers
  and marks the gate skipped).

Every pair of runs is also checked for bit-identical simulated time and
algorithm output — a speedup that changes answers is a bug, not a win.

``--quick`` caches the built databases under
``benchmarks/.dataset_cache/`` (keyed by generator parameters and page
size) so repeated CI cells and local reruns skip the RMAT build.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py           # full
    PYTHONPATH=src python benchmarks/bench_wallclock.py --quick   # CI
"""

import argparse
import datetime
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

from repro.core import GTSEngine
from repro.core.kernels.bfs import BFSKernel
from repro.core.kernels.pagerank import PageRankKernel
from repro.core.kernels.sssp import SSSPKernel
from repro.core.kernels.wcc import WCCKernel
from repro.format import PageFormatConfig, build_database
from repro.format.io import FileBackedDatabase, load_database, save_database
from repro.graphgen import generate_rmat
from repro.hardware.specs import scaled_workstation

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(ROOT, "BENCH_wallclock.json")
DEFAULT_HISTORY = os.path.join(ROOT, "BENCH_history.jsonl")
DATASET_CACHE = os.path.join(ROOT, "benchmarks", ".dataset_cache")
#: Page size for the store/backend cells: large pages amortise the
#: per-page decode overhead, so the cells measure byte movement and
#: parse vectorization rather than Python call dispatch.
STORE_CELL_PAGE_SIZE = 8192


def make_kernel(name, iterations):
    if name == "pagerank":
        return PageRankKernel(iterations=iterations)
    if name == "bfs":
        return BFSKernel(start_vertex=0)
    if name == "sssp":
        return SSSPKernel(start_vertex=0)
    if name == "wcc":
        return WCCKernel()
    raise SystemExit("unknown kernel %r" % name)


def summarize_samples(wall):
    """Cold/warm split plus distribution statistics over the warm
    repeats (best-of-warm stays the headline; p50/p95 expose run-to-run
    spread instead of hiding it behind the single best sample)."""
    warm = wall[1:] or wall
    ordered = sorted(warm)
    from repro.obs.metrics import Histogram
    return {
        "cold_seconds": round(wall[0], 4),
        "warm_seconds": [round(w, 4) for w in wall[1:]],
        "best_seconds": round(min(warm), 4),
        "mean_seconds": round(sum(warm) / len(warm), 4),
        "p50_seconds": round(Histogram._quantile(ordered, 0.50), 4),
        "p95_seconds": round(Histogram._quantile(ordered, 0.95), 4),
    }


def run_mode(db, machine, kernel_name, iterations, execution, repeats):
    """One engine, ``1 + repeats`` runs; returns (timings, last result)."""
    engine = GTSEngine(db, machine, execution=execution)
    wall = []
    result = None
    for _ in range(1 + repeats):
        kernel = make_kernel(kernel_name, iterations)
        start = time.perf_counter()
        result = engine.run(kernel)
        wall.append(time.perf_counter() - start)
    return summarize_samples(wall), result


def check_equivalent(kernel_name, paged, batched):
    """Both paths must agree bit-for-bit on time and answers."""
    problems = []
    if paged.elapsed_seconds != batched.elapsed_seconds:
        problems.append("elapsed_seconds %r != %r" % (
            paged.elapsed_seconds, batched.elapsed_seconds))
    for key in paged.values:
        if not np.array_equal(paged.values[key], batched.values[key]):
            problems.append("values[%r] differ" % key)
    if paged.num_rounds != batched.num_rounds:
        problems.append("num_rounds %d != %d" % (
            paged.num_rounds, batched.num_rounds))
    for problem in problems:
        print("EQUIVALENCE FAILURE (%s): %s" % (kernel_name, problem),
              file=sys.stderr)
    return not problems


def dataset_prefix(args, page_size, cache):
    """A saved ``<prefix>.meta.json``/``.pages`` pair for the requested
    RMAT dataset, built on demand.

    With ``cache`` (the ``--quick`` default) the pair lives under
    ``benchmarks/.dataset_cache/`` keyed by every parameter that shapes
    the bytes, so repeated quick runs skip both the generator and the
    page build.  Without it the pair goes to a fresh temp directory.
    """
    key = "rmat_s%d_f%d_seed%d_ps%d" % (
        args.scale, args.edge_factor, args.seed, page_size)
    if cache:
        directory = os.path.join(DATASET_CACHE, key)
    else:
        directory = os.path.join(tempfile.mkdtemp(prefix="bench_wc_"), key)
    prefix = os.path.join(directory, "db")
    if (os.path.exists(prefix + ".meta.json")
            and os.path.exists(prefix + ".pages")):
        print("  dataset cache hit: %s" % prefix)
        return prefix
    os.makedirs(directory, exist_ok=True)
    graph = generate_rmat(args.scale, edge_factor=args.edge_factor,
                          seed=args.seed)
    config = PageFormatConfig(page_id_bytes=4, slot_bytes=2,
                              page_size=page_size)
    save_database(build_database(graph, config), prefix)
    return prefix


def bench_store_modes(prefix, repeats):
    """Cold-open cell: eager :func:`load_database` versus an mmap open
    plus a full page scan, plus a bit-identity check between runs over
    the two stores."""
    eager_wall, mmap_wall = [], []
    num_pages = None
    for _ in range(1 + repeats):
        start = time.perf_counter()
        eager_db = load_database(prefix)
        eager_wall.append(time.perf_counter() - start)
        num_pages = eager_db.num_pages
    for _ in range(1 + repeats):
        start = time.perf_counter()
        db = FileBackedDatabase(prefix, pool_pages=num_pages, mode="mmap")
        db.prefetch(range(num_pages))
        mmap_wall.append(time.perf_counter() - start)
        db.close()
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    eager_result = GTSEngine(eager_db, machine).run(
        PageRankKernel(iterations=3))
    mapped = FileBackedDatabase(prefix, pool_pages=num_pages, mode="mmap")
    mmap_result = GTSEngine(mapped, machine).run(
        PageRankKernel(iterations=3))
    identical = (
        eager_result.elapsed_seconds == mmap_result.elapsed_seconds
        and all(np.array_equal(eager_result.values[k],
                               mmap_result.values[k])
                for k in eager_result.values))
    mmap_dict = mmap_result.to_dict()
    mapped.close()
    eager_times = summarize_samples(eager_wall)
    mmap_times = summarize_samples(mmap_wall)
    return {
        "protocol": "eager load_database vs mmap open + full page scan "
                    "(1 cold + N warm samples each)",
        "page_size": STORE_CELL_PAGE_SIZE,
        "num_pages": int(num_pages),
        "eager_load": eager_times,
        "mmap_open_scan": mmap_times,
        "speedup_cold": round(eager_times["cold_seconds"]
                              / mmap_times["cold_seconds"], 2),
        "speedup_best": round(eager_times["best_seconds"]
                              / mmap_times["best_seconds"], 2),
        "mmap_hits": mmap_dict["mmap_hits"],
        "mmap_misses": mmap_dict["mmap_misses"],
        "simulated_elapsed_seconds": eager_result.elapsed_seconds,
        "bit_identical": bool(identical),
    }


def bench_backends(prefix, iterations, repeats, workers):
    """Backend cell: serial versus process-sharded batched PageRank
    over the mapped store, one engine per backend, pools reused across
    the warm repeats."""
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    times, results = {}, {}
    for backend in ("serial", "process"):
        db = FileBackedDatabase(prefix, pool_pages=4096, mode="mmap")
        engine = GTSEngine(db, machine, execution="batched",
                           backend=backend, backend_workers=workers)
        wall = []
        try:
            for _ in range(1 + repeats):
                start = time.perf_counter()
                results[backend] = engine.run(
                    PageRankKernel(iterations=iterations))
                wall.append(time.perf_counter() - start)
        finally:
            engine.close()
            db.close()
        times[backend] = summarize_samples(wall)
    serial, process = results["serial"], results["process"]
    identical = (
        serial.elapsed_seconds == process.elapsed_seconds
        and all(np.array_equal(serial.values[k], process.values[k])
                for k in serial.values))
    return {
        "protocol": "batched PageRank on the mmap store, serial vs "
                    "backend='process' (1 cold + N warm runs per "
                    "backend on one engine; the cold process run pays "
                    "the worker fork)",
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "iterations": iterations,
        "serial": times["serial"],
        "process": times["process"],
        "speedup_best": round(times["serial"]["best_seconds"]
                              / times["process"]["best_seconds"], 2),
        "simulated_elapsed_seconds": serial.elapsed_seconds,
        "bit_identical": bool(identical),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="wall-clock gate for batched vs paged execution")
    parser.add_argument("--scale", type=int, default=18,
                        help="RMAT scale (default 18)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--iterations", type=int, default=10,
                        help="PageRank iterations (default 10)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="warm runs per mode (default 3)")
    parser.add_argument("--kernels", default="pagerank",
                        help="comma list: pagerank,bfs,sssp,wcc")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail if the headline kernel's best-of-warm "
                             "speedup is below this (default 1.0: batched "
                             "must not be slower)")
    parser.add_argument("--min-mmap-speedup", type=float, default=None,
                        metavar="X",
                        help="fail if the mmap open+scan is not at least "
                             "X times faster than the eager load "
                             "(default: report only; CI passes 3.0)")
    parser.add_argument("--min-process-speedup", type=float, default=None,
                        metavar="X",
                        help="fail if process-backend PageRank is not at "
                             "least X times faster than serial (default: "
                             "report only; CI passes 1.8; skipped with a "
                             "note on single-core hosts)")
    parser.add_argument("--backend-workers", type=int, default=None,
                        metavar="N",
                        help="worker processes for the backend cell "
                             "(default: cores minus one, capped at 8)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        metavar="JSONL",
                        help="append a schema-versioned record to this "
                             "benchmark-history log (see repro.obs."
                             "history); '' disables the append")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: scale 13, 2 repeats, 5 iterations")
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = min(args.scale, 13)
        args.repeats = min(args.repeats, 2)
        args.iterations = min(args.iterations, 5)

    print("building RMAT%d (edge_factor=%d, seed=%d)..."
          % (args.scale, args.edge_factor, args.seed))
    # The kernel cells keep their original in-memory database and page
    # size (history records stay comparable); --quick routes through the
    # on-disk dataset cache so reruns skip the generator.
    if args.quick:
        db = load_database(dataset_prefix(args, 2048, cache=True))
    else:
        graph = generate_rmat(args.scale, edge_factor=args.edge_factor,
                              seed=args.seed)
        db = build_database(graph, PageFormatConfig(
            page_id_bytes=4, slot_bytes=2, page_size=2048))
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    print("  %d vertices, %d edges, %d pages"
          % (db.num_vertices, db.num_edges, db.num_pages))

    kernels = [k.strip() for k in args.kernels.split(",") if k.strip()]
    report = {
        "benchmark": "wallclock_batched_vs_paged",
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "dataset": {
            "generator": "rmat", "scale": args.scale,
            "edge_factor": args.edge_factor, "seed": args.seed,
            "num_vertices": int(db.num_vertices),
            "num_edges": int(db.num_edges),
            "num_pages": int(db.num_pages),
        },
        "machine": "scaled_workstation(num_gpus=2, num_ssds=2)",
        "protocol": {
            "repeats": args.repeats,
            "timing": "1 cold + N warm runs per mode on one engine; "
                      "headline speedup is best-of-warm / best-of-warm",
        },
        "quick": args.quick,
        "kernels": {},
    }

    ok = True
    headline_speedup = None
    for kernel_name in kernels:
        print("== %s ==" % kernel_name)
        paged_times, paged_result = run_mode(
            db, machine, kernel_name, args.iterations, "paged", args.repeats)
        print("  paged   cold %.2fs  warm %s" % (
            paged_times["cold_seconds"], paged_times["warm_seconds"]))
        batched_times, batched_result = run_mode(
            db, machine, kernel_name, args.iterations, "batched",
            args.repeats)
        print("  batched cold %.2fs  warm %s" % (
            batched_times["cold_seconds"], batched_times["warm_seconds"]))
        equivalent = check_equivalent(
            kernel_name, paged_result, batched_result)
        ok = ok and equivalent
        speedup = round(
            paged_times["best_seconds"] / batched_times["best_seconds"], 2)
        cold_speedup = round(
            paged_times["cold_seconds"] / batched_times["cold_seconds"], 2)
        if headline_speedup is None:
            headline_speedup = speedup
        print("  speedup %.2fx warm best-of-%d (%.2fx cold)"
              % (speedup, args.repeats, cold_speedup))
        report["kernels"][kernel_name] = {
            "iterations": (args.iterations
                           if kernel_name == "pagerank" else None),
            "paged": paged_times,
            "batched": batched_times,
            "speedup_best": speedup,
            "speedup_cold": cold_speedup,
            "simulated_elapsed_seconds": paged_result.elapsed_seconds,
            "bit_identical": equivalent,
        }

    print("== store modes (page_size=%d) ==" % STORE_CELL_PAGE_SIZE)
    store_prefix = dataset_prefix(args, STORE_CELL_PAGE_SIZE,
                                  cache=args.quick)
    store_cell = bench_store_modes(store_prefix, args.repeats)
    ok = ok and store_cell["bit_identical"]
    print("  eager cold %.2fs best %.2fs | mmap cold %.2fs best %.2fs "
          "| speedup %.2fx best (%.2fx cold)"
          % (store_cell["eager_load"]["cold_seconds"],
             store_cell["eager_load"]["best_seconds"],
             store_cell["mmap_open_scan"]["cold_seconds"],
             store_cell["mmap_open_scan"]["best_seconds"],
             store_cell["speedup_best"], store_cell["speedup_cold"]))
    report["store_modes"] = store_cell

    print("== backends (serial vs process) ==")
    from repro.core.parallel import default_workers
    workers = args.backend_workers or default_workers()
    backend_cell = bench_backends(store_prefix, args.iterations,
                                  args.repeats, workers)
    ok = ok and backend_cell["bit_identical"]
    print("  serial best %.2fs | process best %.2fs (%d workers, %s "
          "cpus) | speedup %.2fx"
          % (backend_cell["serial"]["best_seconds"],
             backend_cell["process"]["best_seconds"],
             workers, backend_cell["cpu_count"],
             backend_cell["speedup_best"]))

    report["headline_speedup"] = headline_speedup
    report["min_speedup_gate"] = args.min_speedup
    gate_ok = headline_speedup is not None and (
        headline_speedup >= args.min_speedup)

    store_cell["min_speedup_gate"] = args.min_mmap_speedup
    mmap_ok = True
    if args.min_mmap_speedup is not None:
        mmap_ok = store_cell["speedup_best"] >= args.min_mmap_speedup
        store_cell["gate"] = "passed" if mmap_ok else "failed"
    else:
        store_cell["gate"] = "report only"

    backend_cell["min_speedup_gate"] = args.min_process_speedup
    process_ok = True
    single_core = (backend_cell["cpu_count"] or 1) < 2
    if args.min_process_speedup is None:
        backend_cell["gate"] = "report only"
    elif single_core:
        # Workers timeshare one core with the parent: no speedup is
        # physically available, so record the numbers without gating.
        backend_cell["gate"] = "skipped (single core)"
    else:
        process_ok = (backend_cell["speedup_best"]
                      >= args.min_process_speedup)
        backend_cell["gate"] = "passed" if process_ok else "failed"
    report["backends"] = backend_cell

    report["gate_passed"] = bool(ok and gate_ok and mmap_ok
                                 and process_ok)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print("wrote %s" % args.out)
    if args.history:
        from repro.obs.history import append_history
        append_history(
            args.history, report["benchmark"], report,
            meta={"quick": args.quick, "scale": args.scale,
                  "edge_factor": args.edge_factor, "seed": args.seed,
                  "iterations": args.iterations,
                  "repeats": args.repeats, "kernels": args.kernels},
            generated=report["generated"])
        print("appended history record to %s" % args.history)
    if not ok:
        print("FAIL: a host-side option changed results", file=sys.stderr)
        return 1
    if not gate_ok:
        print("FAIL: headline speedup %sx below gate %.2fx"
              % (headline_speedup, args.min_speedup), file=sys.stderr)
        return 1
    if not mmap_ok:
        print("FAIL: mmap open+scan speedup %.2fx below gate %.2fx"
              % (store_cell["speedup_best"], args.min_mmap_speedup),
              file=sys.stderr)
        return 1
    if not process_ok:
        print("FAIL: process backend speedup %.2fx below gate %.2fx"
              % (backend_cell["speedup_best"], args.min_process_speedup),
              file=sys.stderr)
        return 1
    print("gate passed: %.2fx >= %.2fx (mmap %s, process backend %s)"
          % (headline_speedup, args.min_speedup,
             store_cell["gate"], backend_cell["gate"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
