"""Table 1: transfer-time to kernel-time ratios for BFS and PageRank."""

from repro.bench.experiments import table1_transfer_kernel_ratios


def test_table1_transfer_kernel_ratios(report):
    report(table1_transfer_kernel_ratios, "table1_ratios")
