"""Figure 11: BFS elapsed time and cache hit rate versus cache size."""

from repro.bench.experiments import figure11_cache


def test_figure11_cache(report):
    report(figure11_cache, "fig11_cache")
