"""Table 3: dataset statistics with slotted-page counts (#SP / #LP)."""

from repro.bench.experiments import table3_dataset_statistics


def test_table3_dataset_statistics(report):
    report(table3_dataset_statistics, "table3_datasets")
